package nvmed_test

import (
	"bytes"
	"testing"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/blockdev"
	"sud/internal/pci"
	"sud/internal/sim"
)

// boot brings up the trusted in-kernel configuration: NVMe-lite controller
// driven by nvmed with full kernel privileges (the Figure 8 baseline shape,
// applied to storage).
func boot(t *testing.T, queues int) (*hw.Machine, *kernel.Kernel, *nvme.Ctrl, *blockdev.Dev) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	c := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(queues))
	m.AttachDevice(c)
	if _, err := k.BindInKernel(nvmed.NewQ(queues), c); err != nil {
		t.Fatal(err)
	}
	d, err := k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Up(); err != nil {
		t.Fatal(err)
	}
	return m, k, c, d
}

func TestInKernelWriteReadRoundTrip(t *testing.T) {
	m, _, _, d := boot(t, 2)
	if d.Geom.BlockSize != nvme.BlockSize || d.Geom.Blocks == 0 {
		t.Fatalf("bad identified geometry: %+v", d.Geom)
	}

	pattern := bytes.Repeat([]byte{0xC3}, nvme.BlockSize)
	wrote := false
	if err := d.WriteAt(11, pattern, func(err error) {
		if err != nil {
			t.Errorf("write completion: %v", err)
		}
		wrote = true
	}); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(sim.Millisecond)
	if !wrote {
		t.Fatal("write never completed")
	}

	var got []byte
	if err := d.ReadAt(11, func(data []byte, err error) {
		if err != nil {
			t.Errorf("read completion: %v", err)
			return
		}
		got = append([]byte(nil), data...)
	}); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(got, pattern) {
		t.Fatal("read back wrong data")
	}
}

func TestOutOfRangeLBARejectedAtSubmit(t *testing.T) {
	_, _, _, d := boot(t, 1)
	err := d.ReadAt(d.Geom.Blocks+5, func([]byte, error) { t.Error("callback ran") })
	if err != blockdev.ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestQueueFullParksAndDrains(t *testing.T) {
	m, _, _, d := boot(t, 1)
	// Far more requests than the 64-deep hardware queue: the overflow
	// parks in the queue context and drains via stop/wake.
	const n = 150
	done := 0
	for i := 0; i < n; i++ {
		if err := d.ReadAtQ(uint64(i), 0, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("completion %v", err)
			}
			done++
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if d.Queue(0).Waiting() == 0 {
		t.Fatal("nothing parked: queue never backpressured")
	}
	m.Loop.RunFor(20 * sim.Millisecond)
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	if d.InFlight() != 0 || d.Queue(0).Waiting() != 0 {
		t.Fatalf("leftover state: %d in flight, %d waiting", d.InFlight(), d.Queue(0).Waiting())
	}
}

func TestSubmissionsSpreadAcrossQueues(t *testing.T) {
	m, _, _, d := boot(t, 4)
	for i := 0; i < 64; i++ {
		if err := d.ReadAt(uint64(i*7), func([]byte, error) {}); err != nil {
			t.Fatal(err)
		}
	}
	m.Loop.RunFor(10 * sim.Millisecond)
	for q := 0; q < d.NumQueues(); q++ {
		if d.Queue(q).Reads == 0 {
			t.Fatalf("queue %d idle: LBA steering not spreading", q)
		}
	}
}

func TestStopFreesAndRestarts(t *testing.T) {
	m, _, _, d := boot(t, 2)
	pattern := bytes.Repeat([]byte{0x11}, nvme.BlockSize)
	if err := d.WriteAt(3, pattern, func(error) {}); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(sim.Millisecond)
	if err := d.Down(); err != nil {
		t.Fatal(err)
	}
	if err := d.Up(); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := d.ReadAt(3, func(data []byte, err error) {
		if err != nil {
			t.Errorf("read after restart: %v", err)
		}
		got = data
	}); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(got, pattern) {
		t.Fatal("media lost across stop/start")
	}
}
