// Package e1000e is the Gigabit Ethernet driver for the e1000 device model,
// written exclusively against the Linux-like API in internal/drivers/api —
// the repository's rendition of the paper's unmodified e1000e driver. The
// identical code runs as a trusted in-kernel driver (the Figure 8 baseline)
// and inside an untrusted SUD-UML process; it cannot tell the difference.
//
// The driver is a scaled-down but structurally faithful Linux NIC driver:
// EEPROM MAC read at probe, coherent descriptor rings, NAPI-style ring
// polling from the interrupt handler, interrupt throttling via ITR, TX
// descriptor reclaim with queue stop/wake backpressure, and a watchdog timer
// mirroring link state to the stack.
package e1000e

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/mem"
)

// Ring and buffer geometry, as the Linux driver configures it (§4.2 notes
// the e1000e allocates 256 buffers for each ring).
const (
	RingSize = 256
	BufSize  = 2048

	// itrBulk programs ~8000 interrupts/s for bulk traffic (ITR units
	// are 256 ns); itrLatency disables throttling for latency-sensitive
	// traffic. The driver switches between them like the Linux e1000e's
	// dynamic InterruptThrottleRate mode.
	itrBulk    = 488
	itrLatency = 0

	// watchdogJiffies is the link watchdog period (2 s at HZ=250... the
	// Linux driver also uses 2 s).
	watchdogJiffies = 500
)

// Driver is the module object.
type Driver struct {
	queues   int
	pageFlip bool
}

// New returns the driver module (single TX queue, the Figure 8 baseline).
func New() api.Driver { return Driver{queues: 1} }

// NewQ returns the driver module configured for up to n hardware TX and RX
// queues; at probe the counts are clamped to what the bound device actually
// exposes (e1000.RegTQC / e1000.RegRQC), so a mismatch degrades to fewer
// queues instead of programming banks the hardware will never service.
func NewQ(n int) api.Driver {
	if n < 1 {
		n = 1
	}
	if n > e1000.MaxTxQueues {
		n = e1000.MaxTxQueues
	}
	return Driver{queues: n}
}

// NewFlipQ returns the driver configured for the page-flip fast path: RX
// descriptors over delivered buffer pages are re-armed only when the host
// recycles the page (api.PageRecycler), and TX tail doorbells are staged and
// flushed once per host-call batch (api.BatchKicker). Only hosts that run the
// GuardPageFlip proxy mode and call KickPending at drain end may use it; the
// stock constructors keep the Figure 8 behaviour bit for bit.
func NewFlipQ(n int) api.Driver {
	d := NewQ(n).(Driver)
	d.pageFlip = true
	return d
}

// Name implements api.Driver.
func (Driver) Name() string { return "e1000e" }

// Match implements api.Driver: claim Intel 82574L.
func (Driver) Match(vendor, device uint16) bool {
	return vendor == 0x8086 && device == 0x10D3
}

// Probe implements api.Driver.
func (d Driver) Probe(env api.Env) (api.Instance, error) {
	q := d.queues
	if q < 1 {
		q = 1
	}
	n := &nic{env: env, queues: q, rxQueues: q, pageAware: d.pageFlip, coalesceTx: d.pageFlip}
	if err := n.probe(); err != nil {
		return nil, err
	}
	return n, nil
}

// txq is one transmit queue: a descriptor ring, its buffer pool, and the
// software head/tail state.
type txq struct {
	ring api.DMABuf
	bufs api.DMABuf

	tail     int // next descriptor to fill
	reclaim  int // next descriptor to reclaim
	inFlight int
	stopped  bool
	kick     bool // staged tail doorbell (coalesceTx)
}

// rxq is one receive queue: a descriptor ring, its buffer pool, and the
// next-descriptor-to-poll cursor.
type rxq struct {
	ring api.DMABuf
	bufs api.DMABuf

	next int // next descriptor to poll

	// deferred holds consumed descriptor indices not yet re-armed, in ring
	// order (pageAware: the host owns their buffer pages until it recycles
	// them back).
	deferred []int
}

type nic struct {
	env      api.Env
	mmio     api.MMIO
	net      api.NetKernel
	mac      [6]byte
	queues   int
	rxQueues int

	tx []txq
	rx []rxq

	opened  bool
	removed bool
	carrier bool

	// Page-flip fast-path knobs (NewFlipQ): defer RX re-arm until the host
	// recycles buffer pages; stage TX tail doorbells until KickPending.
	pageAware  bool
	coalesceTx bool

	// Dynamic ITR state.
	itrCur    uint32
	lowStreak int

	// Counters (visible to tests and the stats ioctl).
	TxPkts, RxPkts, TxDrops uint64
	Interrupts              uint64
	// TxDoorbells counts TDT MMIO writes (doorbells-per-packet is the
	// submit-side coalescing metric); RxDoorbells counts RDT writes.
	TxDoorbells, RxDoorbells uint64
}

var _ api.NetDevice = (*nic)(nil)
var _ api.Instance = (*nic)(nil)

func (n *nic) probe() error {
	env := n.env
	if err := env.EnableDevice(); err != nil {
		return err
	}
	if err := env.SetMaster(); err != nil {
		return err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return err
	}
	n.mmio = m

	// Reset the function, then bring the MAC out of reset.
	m.Write32(e1000.RegCTRL, e1000.CtrlRST)
	m.Write32(e1000.RegCTRL, e1000.CtrlSLU)

	// Read the MAC address from EEPROM words 0..2.
	for w := 0; w < 3; w++ {
		m.Write32(e1000.RegEERD, uint32(w)<<8|e1000.EerdStart)
		v := m.Read32(e1000.RegEERD)
		if v&e1000.EerdDone == 0 {
			return fmt.Errorf("e1000e: EEPROM read timeout (word %d)", w)
		}
		n.mac[2*w] = byte(v >> 16)
		n.mac[2*w+1] = byte(v >> 24)
	}

	// Clamp the configured queue counts to what the hardware exposes, as
	// the Linux driver sizes its rings from the device's capabilities —
	// a stale module parameter must degrade, not wedge silent queues.
	if tqc := int(m.Read32(e1000.RegTQC)); tqc >= 1 && tqc < n.queues {
		env.Logf("e1000e: device exposes %d TX queues, using %d (not %d)", tqc, tqc, n.queues)
		n.queues = tqc
	}
	if rqc := int(m.Read32(e1000.RegRQC)); rqc >= 1 && rqc < n.rxQueues {
		env.Logf("e1000e: device exposes %d RX queues, using %d (not %d)", rqc, rqc, n.rxQueues)
		n.rxQueues = rqc
	}

	nk, err := env.RegisterNetDev("eth0", n.mac, n)
	if err != nil {
		return err
	}
	n.net = nk
	env.Logf("e1000e: probed, MAC %02x:%02x:%02x:%02x:%02x:%02x",
		n.mac[0], n.mac[1], n.mac[2], n.mac[3], n.mac[4], n.mac[5])
	return nil
}

// Remove implements api.Instance.
func (n *nic) Remove() {
	if n.opened {
		_ = n.Stop()
	}
	n.removed = true
}

// --- api.NetDevice ----------------------------------------------------------

// Open implements ndo_open: allocate rings, program the device, request the
// interrupt, enable TX/RX.
func (n *nic) Open() error {
	if n.opened {
		return nil
	}
	env := n.env
	var err error
	m := n.mmio
	n.tx = make([]txq, n.queues)
	for q := range n.tx {
		t := &n.tx[q]
		// The TX engine for queue q stamps stream q+1 on its DMA; tagging
		// the ring and buffers confines them to that queue's sub-domain on
		// hosts with the per-queue split.
		if t.ring, err = api.AllocCoherentQ(env, RingSize*e1000.DescSize, q+1); err != nil {
			return err
		}
		if t.bufs, err = api.AllocCachingQ(env, RingSize*BufSize, q+1); err != nil {
			return err
		}
		m.Write32(e1000.TxQOff(q, e1000.RegTDBAL), uint32(t.ring.BusAddr()))
		m.Write32(e1000.TxQOff(q, e1000.RegTDBAH), uint32(uint64(t.ring.BusAddr())>>32))
		m.Write32(e1000.TxQOff(q, e1000.RegTDLEN), RingSize*e1000.DescSize)
		m.Write32(e1000.TxQOff(q, e1000.RegTDH), 0)
		m.Write32(e1000.TxQOff(q, e1000.RegTDT), 0)
	}
	n.rx = make([]rxq, n.rxQueues)
	for q := range n.rx {
		r := &n.rx[q]
		if r.ring, err = api.AllocCoherentQ(env, RingSize*e1000.DescSize, q+1); err != nil {
			return err
		}
		if r.bufs, err = api.AllocCachingQ(env, RingSize*BufSize, q+1); err != nil {
			return err
		}
		m.Write32(e1000.RxQOff(q, e1000.RegRDBAL), uint32(r.ring.BusAddr()))
		m.Write32(e1000.RxQOff(q, e1000.RegRDBAH), uint32(uint64(r.ring.BusAddr())>>32))
		m.Write32(e1000.RxQOff(q, e1000.RegRDLEN), RingSize*e1000.DescSize)
		m.Write32(e1000.RxQOff(q, e1000.RegRDH), 0)

		// Arm every RX descriptor with a buffer; leave one slot to
		// distinguish full from empty.
		for i := 0; i < RingSize; i++ {
			n.armRxDesc(q, i)
		}
		m.Write32(e1000.RxQOff(q, e1000.RegRDT), RingSize-1)
		r.next = 0
	}
	// Spread flows round-robin across the RX rings through the RSS
	// redirection table, as the Linux driver's default RSS init does. A
	// single-queue configuration leaves the table at its reset default
	// (everything to ring 0).
	if n.rxQueues > 1 {
		for i := 0; i < e1000.RetaEntries; i++ {
			m.Write32(e1000.RegRETA+uint64(4*i), uint32(i%n.rxQueues))
		}
	}

	if err := env.RequestIRQ(n.irq); err != nil {
		return err
	}
	n.itrCur = itrBulk
	m.Write32(e1000.RegITR, itrBulk)
	m.Write32(e1000.RegIMS, e1000.IntTXDW|e1000.IntRXT0|e1000.IntRXO|e1000.IntLSC)
	m.Write32(e1000.RegTCTL, e1000.TctlEN)
	m.Write32(e1000.RegRCTL, e1000.RctlEN)

	n.opened = true
	n.watchdog()
	return nil
}

// Stop implements ndo_stop.
func (n *nic) Stop() error {
	if !n.opened {
		return nil
	}
	n.opened = false
	m := n.mmio
	m.Write32(e1000.RegIMC, 0xFFFFFFFF)
	m.Write32(e1000.RegTCTL, 0)
	m.Write32(e1000.RegRCTL, 0)
	if err := n.env.FreeIRQ(); err != nil {
		return err
	}
	var bufs []api.DMABuf
	for q := range n.rx {
		bufs = append(bufs, n.rx[q].ring, n.rx[q].bufs)
	}
	for q := range n.tx {
		bufs = append(bufs, n.tx[q].ring, n.tx[q].bufs)
	}
	for _, b := range bufs {
		if b != nil {
			if err := n.env.FreeDMA(b); err != nil {
				return err
			}
		}
	}
	n.tx, n.rx = nil, nil
	if n.carrier {
		n.carrier = false
		n.net.CarrierOff()
	}
	return nil
}

// TxQueues implements api.MultiQueueNetDevice.
func (n *nic) TxQueues() int { return n.queues }

// StartXmit implements ndo_start_xmit on queue 0.
func (n *nic) StartXmit(frame []byte) error { return n.StartXmitQ(frame, 0) }

// StartXmitQ implements api.MultiQueueNetDevice: fill a descriptor on the
// given hardware queue and ring that queue's tail doorbell.
func (n *nic) StartXmitQ(frame []byte, q int) error {
	if !n.opened {
		return fmt.Errorf("e1000e: device closed")
	}
	if q < 0 || q >= n.queues {
		q = 0
	}
	if len(frame) > BufSize {
		n.TxDrops++
		return fmt.Errorf("e1000e: frame too large (%d bytes)", len(frame))
	}
	t := &n.tx[q]
	if t.inFlight >= RingSize-1 {
		// Ring full: flush any staged doorbell so the device can make
		// progress, reclaim completed descriptors inline, then give up
		// and stop the queue (the stack retries after WakeQueue).
		n.kickTxQ(q)
		n.reclaimTx()
		if t.inFlight >= RingSize-1 {
			t.stopped = true
			return fmt.Errorf("e1000e: TX ring %d full", q)
		}
	}
	slot := t.tail
	bufOff := slot * BufSize
	// Copy the frame into the slot's DMA buffer. (The zero-copy view is
	// used when available; Write charges the same per-byte cost.)
	if view, ok := t.bufs.Slice(bufOff, len(frame)); ok {
		copy(view, frame)
	} else if err := t.bufs.Write(bufOff, frame); err != nil {
		return err
	}
	// Build the legacy TX descriptor.
	var desc [e1000.DescSize]byte
	putLE64(desc[0:8], uint64(t.bufs.BusAddr())+uint64(bufOff))
	putLE16(desc[8:10], uint16(len(frame)))
	desc[11] = e1000.TxCmdEOP | e1000.TxCmdRS
	if err := n.writeDesc(t.ring, slot, desc[:]); err != nil {
		return err
	}
	t.tail = (t.tail + 1) % RingSize
	t.inFlight++
	if n.coalesceTx {
		// Stage the tail doorbell; KickPending flushes it once for the
		// whole batch of transmits the host delivered in this drain.
		t.kick = true
	} else {
		n.mmio.Write32(e1000.TxQOff(q, e1000.RegTDT), uint32(t.tail))
		n.TxDoorbells++
	}
	n.TxPkts++
	return nil
}

// kickTxQ flushes queue q's staged tail doorbell, if any.
func (n *nic) kickTxQ(q int) {
	t := &n.tx[q]
	if !t.kick {
		return
	}
	t.kick = false
	n.mmio.Write32(e1000.TxQOff(q, e1000.RegTDT), uint32(t.tail))
	n.TxDoorbells++
}

// KickPending implements api.BatchKicker: flush every staged TX tail doorbell
// in one pass — one MMIO write per queue that transmitted since the last
// kick, however many frames the batch carried.
func (n *nic) KickPending() {
	if !n.opened {
		return
	}
	for q := range n.tx {
		n.kickTxQ(q)
	}
}

// DoIoctl implements ndo_do_ioctl; SIOCGMIIREG reports link status, the
// paper's example of a synchronous upcall.
func (n *nic) DoIoctl(cmd uint32, arg []byte) ([]byte, error) {
	switch cmd {
	case api.IoctlGetMIIStatus:
		status := n.mmio.Read32(e1000.RegSTATUS)
		return []byte{byte(status & e1000.StatusLU)}, nil
	default:
		return nil, fmt.Errorf("e1000e: unsupported ioctl %#x", cmd)
	}
}

// --- interrupt path ---------------------------------------------------------

func (n *nic) irq() {
	if !n.opened {
		return
	}
	n.Interrupts++
	work := 0
	icr := n.mmio.Read32(e1000.RegICR) // read clears
	if icr&e1000.IntLSC != 0 {
		n.checkLink()
	}
	if icr&e1000.IntTXDW != 0 {
		work += n.reclaimTx()
	}
	if icr&(e1000.IntRXT0|e1000.IntRXO) != 0 {
		for q := range n.rx {
			work += n.pollRx(q)
		}
	}
	n.tuneITR(work)
	n.env.IRQAck()
}

// tuneITR is the dynamic interrupt moderation policy: sparse per-interrupt
// work means latency-bound traffic (drop throttling); deep batches mean bulk
// streams (throttle to ~8000/s).
func (n *nic) tuneITR(work int) {
	switch {
	case work <= 2:
		n.lowStreak++
		if n.lowStreak >= 3 && n.itrCur != itrLatency {
			n.itrCur = itrLatency
			n.mmio.Write32(e1000.RegITR, itrLatency)
		}
	case work >= 8:
		n.lowStreak = 0
		if n.itrCur != itrBulk {
			n.itrCur = itrBulk
			n.mmio.Write32(e1000.RegITR, itrBulk)
		}
	default:
		n.lowStreak = 0
	}
}

// reclaimTx frees completed TX descriptors on every queue and wakes the
// stack per queue that regained space. It returns the number of descriptors
// freed.
func (n *nic) reclaimTx() int {
	freed := 0
	for q := range n.tx {
		t := &n.tx[q]
		qFreed := 0
		for t.inFlight > 0 {
			desc, err := n.readDesc(t.ring, t.reclaim)
			if err != nil || desc[12]&e1000.TxStaDD == 0 {
				break
			}
			t.reclaim = (t.reclaim + 1) % RingSize
			t.inFlight--
			qFreed++
		}
		if qFreed > 0 && t.stopped {
			t.stopped = false
			n.net.WakeQueue(q)
		}
		freed += qFreed
	}
	return freed
}

// pollRx drains RX ring q NAPI-style: process every completed descriptor,
// hand frames to the stack tagged with their queue, re-arm and return
// descriptors to the hardware. It returns the number of frames processed.
func (n *nic) pollRx(q int) int {
	r := &n.rx[q]
	processed := 0
	for {
		desc, err := n.readDesc(r.ring, r.next)
		if err != nil || desc[12]&e1000.RxStaDD == 0 {
			break
		}
		length := int(le16(desc[8:10]))
		bufOff := r.next * BufSize
		if length > 0 && length <= BufSize {
			var frame []byte
			if view, ok := r.bufs.Slice(bufOff, length); ok {
				frame = view // zero-copy into the stack, like an skb
			} else {
				frame = make([]byte, length)
				if err := r.bufs.Read(bufOff, frame); err != nil {
					break
				}
			}
			n.RxPkts++
			n.net.NetifRx(frame, q)
		}
		if n.pageAware {
			// The host may flip this buffer's page to the kernel; the
			// descriptor is re-armed when the page comes back through
			// RecyclePages.
			r.deferred = append(r.deferred, r.next)
		} else {
			n.armRxDesc(q, r.next)
			n.mmio.Write32(e1000.RxQOff(q, e1000.RegRDT), uint32(r.next))
			n.RxDoorbells++
		}
		r.next = (r.next + 1) % RingSize
		processed++
		if processed >= RingSize {
			break // bounded work per interrupt, as NAPI budgets
		}
	}
	return processed
}

// RecyclePages implements api.PageRecycler: the host returns buffer pages it
// took from RX ring q — flipped to the kernel and since remapped, or merely
// borrowed for a guard copy. Pages come back in consumption order, so each
// one re-arms the matching prefix of deferred descriptors; one tail doorbell
// then returns the whole batch to the hardware.
func (n *nic) RecyclePages(q int, pages []mem.Addr) {
	if !n.opened || q < 0 || q >= len(n.rx) {
		return
	}
	r := &n.rx[q]
	base := r.bufs.BusAddr()
	last := -1
	for _, page := range pages {
		if page < base || page >= base+mem.Addr(RingSize*BufSize) {
			continue // not this ring's pool
		}
		for len(r.deferred) > 0 {
			d := r.deferred[0]
			if mem.PageAlign(base+mem.Addr(d*BufSize)) != page {
				break
			}
			n.armRxDesc(q, d)
			r.deferred = r.deferred[1:]
			last = d
		}
	}
	if last >= 0 {
		n.mmio.Write32(e1000.RxQOff(q, e1000.RegRDT), uint32(last))
		n.RxDoorbells++
	}
}

// armRxDesc points ring q's descriptor i at its buffer with a cleared
// status.
func (n *nic) armRxDesc(q, i int) {
	r := &n.rx[q]
	var desc [e1000.DescSize]byte
	putLE64(desc[0:8], uint64(r.bufs.BusAddr())+uint64(i*BufSize))
	if err := n.writeDesc(r.ring, i, desc[:]); err != nil {
		n.env.Logf("e1000e: arm rx desc %d/%d: %v", q, i, err)
	}
}

// --- link watchdog ----------------------------------------------------------

func (n *nic) watchdog() {
	if !n.opened || n.removed {
		return
	}
	n.checkLink()
	// Flush any tail doorbell a host without drain-end kicks left staged,
	// so a misconfigured pairing degrades to slow instead of wedged.
	n.KickPending()
	n.env.Timer(watchdogJiffies, n.watchdog)
}

func (n *nic) checkLink() {
	up := n.mmio.Read32(e1000.RegSTATUS)&e1000.StatusLU != 0
	if up && !n.carrier {
		n.carrier = true
		n.net.CarrierOn()
		n.env.Logf("e1000e: link up")
	} else if !up && n.carrier {
		n.carrier = false
		n.net.CarrierOff()
		n.env.Logf("e1000e: link down")
	}
}

// --- descriptor access ------------------------------------------------------

func (n *nic) writeDesc(ring api.DMABuf, i int, desc []byte) error {
	if view, ok := ring.Slice(i*e1000.DescSize, e1000.DescSize); ok {
		copy(view, desc)
		return nil
	}
	return ring.Write(i*e1000.DescSize, desc)
}

func (n *nic) readDesc(ring api.DMABuf, i int) ([]byte, error) {
	if view, ok := ring.Slice(i*e1000.DescSize, e1000.DescSize); ok {
		return view, nil
	}
	desc := make([]byte, e1000.DescSize)
	err := ring.Read(i*e1000.DescSize, desc)
	return desc, err
}

// MAC returns the address read from EEPROM (tests).
func (n *nic) MAC() [6]byte { return n.mac }

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func putLE16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
