package e1000e

import (
	"bytes"
	"testing"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
)

var (
	dutMAC  = [6]byte{0x00, 0x1B, 0x21, 0x11, 0x22, 0x33}
	peerMAC = netstack.MAC{0x00, 0x1B, 0x21, 0x44, 0x55, 0x66}
	dutIP   = netstack.IP{10, 0, 0, 1}
	peerIP  = netstack.IP{10, 0, 0, 2}
)

// echoPeer is a wire-level peer that echoes UDP datagrams and records
// everything it sees.
type echoPeer struct {
	link  *ethlink.Link
	loop  *sim.Loop
	seen  [][]byte
	echos int
}

func (p *echoPeer) LinkDeliver(frame []byte) {
	p.seen = append(p.seen, frame)
	eh, ipPkt, err := netstack.ParseEth(frame)
	if err != nil || eh.EtherType != netstack.EtherTypeIPv4 {
		return
	}
	ih, l4, err := netstack.ParseIPv4(ipPkt)
	if err != nil || ih.Proto != netstack.ProtoUDP {
		return
	}
	uh, payload, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true)
	if err != nil || uh.DstPort != 7 {
		return
	}
	// Echo back after a small turnaround.
	reply := netstack.BuildUDPFrame(peerMAC, netstack.MAC(eh.Src), ih.Dst, ih.Src, 7, uh.SrcPort, payload)
	p.loop.After(5*sim.Microsecond, func() {
		p.echos++
		_ = p.link.Send(1, reply)
	})
}

// world is a booted machine with the e1000e bound in-kernel.
type world struct {
	m    *hw.Machine
	k    *kernel.Kernel
	nic  *e1000.NIC
	peer *echoPeer
	ifc  *netstack.Iface
	inst api.Instance
	drv  *nic
}

func boot(t *testing.T) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(dev, peer)
	dev.AttachLink(link, 0)

	inst, err := k.BindInKernel(New(), dev)
	if err != nil {
		t.Fatal(err)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(10 * sim.Microsecond)
	return &world{m: m, k: k, nic: dev, peer: peer, ifc: ifc, inst: inst, drv: inst.(*nic)}
}

// bootQ boots the world with a multi-queue device and driver.
func bootQ(t *testing.T, queues int) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.MultiQueueParams(queues))
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(dev, peer)
	dev.AttachLink(link, 0)

	inst, err := k.BindInKernel(NewQ(queues), dev)
	if err != nil {
		t.Fatal(err)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(10 * sim.Microsecond)
	return &world{m: m, k: k, nic: dev, peer: peer, ifc: ifc, inst: inst, drv: inst.(*nic)}
}

// TestMultiRingRxSteering drives distinct flows at a 4-ring device and
// checks the whole receive-steering path: the driver's RETA programming
// spreads the flows over the RX rings, each ring's frames reach the stack
// tagged with their queue, and nothing is lost.
func TestMultiRingRxSteering(t *testing.T) {
	w := bootQ(t, 4)
	if w.drv.rxQueues != 4 || len(w.drv.rx) != 4 {
		t.Fatalf("driver armed %d RX rings, want 4", w.drv.rxQueues)
	}
	var got uint64
	if _, err := w.k.Net.UDPBind(9000, func([]byte, netstack.IP, uint16) { got++ }); err != nil {
		t.Fatal(err)
	}
	// 16 flows, 5 datagrams each: consecutive source ports walk the
	// redirection table, so every ring must see traffic.
	const flows, per = 16, 5
	for s := 0; s < flows; s++ {
		f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(dutMAC), peerIP, dutIP,
			uint16(41000+s), 9000, make([]byte, 64))
		for i := 0; i < per; i++ {
			w.m.Loop.After(sim.Duration(i)*100*sim.Microsecond, func() { _ = w.peerLink().Send(1, f) })
		}
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if got != flows*per {
		t.Fatalf("delivered %d datagrams, want %d", got, flows*per)
	}
	if w.nic.RxPackets != flows*per {
		t.Fatalf("device received %d", w.nic.RxPackets)
	}
	for q := 0; q < 4; q++ {
		if w.ifc.Queue(q).RxFrames == 0 {
			t.Fatalf("RX ring %d saw no frames: steering broken", q)
		}
	}
}

// TestRxQueueCountClampedToDevice: a driver configured for more RX queues
// than the device exposes degrades instead of arming dead rings.
func TestRxQueueCountClampedToDevice(t *testing.T) {
	w := boot(t) // single-queue device...
	if w.drv.rxQueues != 1 || w.drv.queues != 1 {
		t.Fatalf("single-queue boot got tx=%d rx=%d", w.drv.queues, w.drv.rxQueues)
	}
	// ...and a multi-queue request against it clamps at probe.
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	link.Connect(dev, &echoPeer{link: link, loop: m.Loop})
	dev.AttachLink(link, 0)
	inst, err := k.BindInKernel(NewQ(4), dev)
	if err != nil {
		t.Fatal(err)
	}
	drv := inst.(*nic)
	if drv.queues != 1 || drv.rxQueues != 1 {
		t.Fatalf("clamp failed: tx=%d rx=%d, want 1/1", drv.queues, drv.rxQueues)
	}
}

func TestProbeReadsMAC(t *testing.T) {
	w := boot(t)
	if w.drv.MAC() != dutMAC {
		t.Fatalf("driver MAC %x, want %x", w.drv.MAC(), dutMAC)
	}
	if w.ifc.MAC != netstack.MAC(dutMAC) {
		t.Fatal("netdev registered with wrong MAC")
	}
}

func TestCarrierDetected(t *testing.T) {
	w := boot(t)
	w.m.Loop.RunFor(3 * sim.Second)
	if !w.ifc.Carrier() {
		t.Fatal("watchdog never raised carrier")
	}
	// Pull the cable; the watchdog notices within its period.
	w.nic.LinkDeliver(nil) // no-op warmup
	w.peerLinkDown()
	w.m.Loop.RunFor(3 * sim.Second)
	if w.ifc.Carrier() {
		t.Fatal("carrier stayed up after cable pull")
	}
}

func (w *world) peerLinkDown() { w.peerLink().SetCarrier(false) }
func (w *world) peerLink() *ethlink.Link {
	return w.peer.link
}

func TestUDPTransmitEndToEnd(t *testing.T) {
	w := boot(t)
	payload := bytes.Repeat([]byte{0xEE}, 64)
	if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 5000, 9, payload); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(sim.Millisecond)
	if len(w.peer.seen) != 1 {
		t.Fatalf("peer saw %d frames", len(w.peer.seen))
	}
	// The wire frame is a valid UDP datagram with our payload.
	_, ipPkt, _ := netstack.ParseEth(w.peer.seen[0])
	ih, l4, err := netstack.ParseIPv4(ipPkt)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("wire payload: %v %q", err, got)
	}
	if w.nic.TxPackets != 1 {
		t.Fatalf("device TxPackets = %d", w.nic.TxPackets)
	}
}

func TestUDPEchoRoundTrip(t *testing.T) {
	w := boot(t)
	var replies int
	if _, err := w.k.Net.UDPBind(5000, func(p []byte, src netstack.IP, sport uint16) {
		if src == peerIP && sport == 7 {
			replies++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 5000, 7, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(sim.Millisecond)
	}
	if replies != 5 {
		t.Fatalf("got %d echo replies, want 5", replies)
	}
	if w.drv.Interrupts == 0 {
		t.Fatal("driver took no interrupts")
	}
	if w.nic.RxPackets != 5 {
		t.Fatalf("device RxPackets = %d", w.nic.RxPackets)
	}
}

func TestTxRingBackpressureAndRecovery(t *testing.T) {
	w := boot(t)
	// Flood more packets than the ring holds without letting the engine
	// drain; expect ErrQueueStopped at some point, then recovery.
	payload := bytes.Repeat([]byte{1}, 64)
	var stopped bool
	sent := 0
	for i := 0; i < 2*RingSize; i++ {
		err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 9, payload)
		if err != nil {
			stopped = true
			break
		}
		sent++
	}
	if !stopped {
		t.Fatal("ring never filled")
	}
	if sent < RingSize-2 {
		t.Fatalf("queue stopped after only %d sends", sent)
	}
	// Let the device drain and the irq path wake the queue.
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 9, payload); err != nil {
		t.Fatal("send after drain failed:", err)
	}
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if int(w.nic.TxPackets) != sent+1 {
		t.Fatalf("device transmitted %d, want %d", w.nic.TxPackets, sent+1)
	}
}

func TestIoctlMIIStatus(t *testing.T) {
	w := boot(t)
	out, err := w.ifc.Ioctl(api.IoctlGetMIIStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&e1000.StatusLU == 0 {
		t.Fatal("MII ioctl reports link down")
	}
}

func TestStopFreesAndQuiesces(t *testing.T) {
	w := boot(t)
	if err := w.ifc.Down(); err != nil {
		t.Fatal(err)
	}
	// Frames arriving now are ignored by the closed device.
	before := w.nic.RxPackets
	reply := netstack.BuildUDPFrame(peerMAC, netstack.MAC(dutMAC), peerIP, dutIP, 7, 5000, []byte("x"))
	if err := w.peerLink().Send(1, reply); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(sim.Millisecond)
	if w.nic.RxPackets != before {
		t.Fatal("closed device received packets")
	}
	// Reopen works.
	if err := w.ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 9, []byte("y")); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(sim.Millisecond)
}

func TestRemoveUnbinds(t *testing.T) {
	w := boot(t)
	w.k.Unbind(w.nic)
	// After unbind the device's DMA faults (no domain).
	if err := w.nic.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("DMA after unbind succeeded")
	}
}

func TestInterruptModerationUnderLoad(t *testing.T) {
	w := boot(t)
	// Blast 200 small frames at the DUT; with ITR at 8000/s over the
	// ~1 ms of delivery, interrupts should be far fewer than frames.
	for i := 0; i < 200; i++ {
		f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(dutMAC), peerIP, dutIP, 7, 9999, []byte{byte(i)})
		w.m.Loop.After(sim.Duration(i)*4*sim.Microsecond, func() {
			_ = w.peerLink().Send(1, f)
		})
	}
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if w.nic.RxPackets != 200 {
		t.Fatalf("device received %d", w.nic.RxPackets)
	}
	if w.drv.Interrupts >= 100 {
		t.Fatalf("ITR ineffective: %d interrupts for 200 frames", w.drv.Interrupts)
	}
	// All frames reached the stack despite moderation.
	if w.k.Net.RxFrames != 200 {
		t.Fatalf("stack saw %d frames", w.k.Net.RxFrames)
	}
}

func TestKernelCPUChargedForTraffic(t *testing.T) {
	w := boot(t)
	w.m.CPU.Reset(w.m.Now())
	for i := 0; i < 50; i++ {
		if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 9, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(10 * sim.Microsecond)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if w.k.Acct.Busy() == 0 {
		t.Fatal("no CPU charged for 50 sends")
	}
	util := w.m.CPU.Utilization(w.m.Now())
	if util <= 0 || util >= 1 {
		t.Fatalf("utilization = %v out of range", util)
	}
}
