// Package iwl is the 802.11 driver for the wifi device model — the
// repository's stand-in for the iwlagn5000 driver the paper ran unmodified
// under SUD (§4). Like the e1000e driver, it is written only against
// internal/drivers/api and runs identically in-kernel and in an untrusted
// SUD process.
package iwl

import (
	"fmt"

	"sud/internal/devices/wifi"
	"sud/internal/drivers/api"
)

// Driver is the module object.
type Driver struct{}

// New returns the driver module.
func New() api.Driver { return Driver{} }

// Name implements api.Driver.
func (Driver) Name() string { return "iwlagn" }

// Match implements api.Driver: Intel WiFi Link 5000 series.
func (Driver) Match(vendor, device uint16) bool {
	return vendor == 0x8086 && device == 0x4232
}

// Probe implements api.Driver.
func (Driver) Probe(env api.Env) (api.Instance, error) {
	we, ok := env.(api.EnvWifi)
	if !ok {
		return nil, fmt.Errorf("iwl: host does not support wireless devices")
	}
	n := &card{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return nil, err
	}
	n.mmio = m
	lo := m.Read32(wifi.RegMACLo)
	hi := m.Read32(wifi.RegMACHi)
	n.mac = [6]byte{byte(lo), byte(lo >> 8), byte(lo >> 16), byte(lo >> 24), byte(hi), byte(hi >> 8)}
	wk, err := we.RegisterWifiDev("wlan0", n.mac, n)
	if err != nil {
		return nil, err
	}
	n.wk = wk
	env.Logf("iwlagn: probed, MAC %02x:%02x:%02x:%02x:%02x:%02x",
		n.mac[0], n.mac[1], n.mac[2], n.mac[3], n.mac[4], n.mac[5])
	return n, nil
}

type card struct {
	env  api.Env
	mmio api.MMIO
	wk   api.WifiKernel
	mac  [6]byte

	scanBuf api.DMABuf
	txBuf   api.DMABuf
	rxBuf   api.DMABuf
	rxAck   uint32

	lastScan  []api.BSS
	pendSSID  string
	assocSSID string
	opened    bool

	// Counters.
	Scans, TxFrames, RxFrames uint64
}

var _ api.WifiDevice = (*card)(nil)
var _ api.Instance = (*card)(nil)

// Remove implements api.Instance.
func (c *card) Remove() {
	if c.opened {
		_ = c.Stop()
	}
}

// Open implements api.WifiDevice.
func (c *card) Open() error {
	if c.opened {
		return nil
	}
	var err error
	if c.scanBuf, err = c.env.AllocCoherent(64 * wifi.BSSEntrySize); err != nil {
		return err
	}
	if c.txBuf, err = c.env.AllocCaching(2048); err != nil {
		return err
	}
	if c.rxBuf, err = c.env.AllocCaching(wifi.RxSlots * wifi.RxSlotSize); err != nil {
		return err
	}
	if err := c.env.RequestIRQ(c.irq); err != nil {
		return err
	}
	m := c.mmio
	m.Write32(wifi.RegScanBufLo, uint32(c.scanBuf.BusAddr()))
	m.Write32(wifi.RegScanBufHi, uint32(uint64(c.scanBuf.BusAddr())>>32))
	m.Write32(wifi.RegTxBufLo, uint32(c.txBuf.BusAddr()))
	m.Write32(wifi.RegTxBufHi, uint32(uint64(c.txBuf.BusAddr())>>32))
	m.Write32(wifi.RegRxBufLo, uint32(c.rxBuf.BusAddr()))
	m.Write32(wifi.RegRxBufHi, uint32(uint64(c.rxBuf.BusAddr())>>32))
	m.Write32(wifi.RegRxCtl, 1)
	m.Write32(wifi.RegIntMask, 0xFFFFFFFF)
	c.opened = true
	return nil
}

// Stop implements api.WifiDevice.
func (c *card) Stop() error {
	if !c.opened {
		return nil
	}
	c.opened = false
	c.mmio.Write32(wifi.RegIntMask, 0)
	c.mmio.Write32(wifi.RegRxCtl, 0)
	if err := c.env.FreeIRQ(); err != nil {
		return err
	}
	for _, b := range []api.DMABuf{c.scanBuf, c.txBuf, c.rxBuf} {
		if b != nil {
			if err := c.env.FreeDMA(b); err != nil {
				return err
			}
		}
	}
	c.scanBuf, c.txBuf, c.rxBuf = nil, nil, nil
	return nil
}

// StartScan implements api.WifiDevice.
func (c *card) StartScan() error {
	if !c.opened {
		return fmt.Errorf("iwl: interface down")
	}
	c.Scans++
	c.mmio.Write32(wifi.RegCmd, wifi.CmdScan)
	return nil
}

// Associate implements api.WifiDevice.
func (c *card) Associate(ssid string) error {
	for i, b := range c.lastScan {
		if b.SSID == ssid {
			c.pendSSID = ssid
			c.mmio.Write32(wifi.RegAssocIdx, uint32(i))
			c.mmio.Write32(wifi.RegCmd, wifi.CmdAssoc)
			return nil
		}
	}
	return fmt.Errorf("iwl: SSID %q not in last scan", ssid)
}

// Disassociate implements api.WifiDevice.
func (c *card) Disassociate() error {
	c.mmio.Write32(wifi.RegCmd, wifi.CmdDisassoc)
	return nil
}

// StartXmit implements api.WifiDevice (single-slot TX keeps this class
// simple; throughput is benchmarked on Ethernet).
func (c *card) StartXmit(frame []byte) error {
	if !c.opened {
		return fmt.Errorf("iwl: interface down")
	}
	if len(frame) > 2048 {
		return fmt.Errorf("iwl: frame too large")
	}
	if view, ok := c.txBuf.Slice(0, len(frame)); ok {
		copy(view, frame)
	} else if err := c.txBuf.Write(0, frame); err != nil {
		return err
	}
	c.TxFrames++
	c.mmio.Write32(wifi.RegTxLen, uint32(len(frame)))
	return nil
}

// Features implements api.WifiDevice: the static set the proxy mirrors.
func (c *card) Features() uint32 {
	return api.WifiFeatShortPreamble | api.WifiFeat11g | api.WifiFeat11n
}

func (c *card) irq() {
	if !c.opened {
		return
	}
	cause := c.mmio.Read32(wifi.RegIntCause)
	if cause&wifi.IntScanDone != 0 {
		c.readScanResults()
	}
	if cause&wifi.IntAssocOK != 0 {
		c.assocSSID = c.pendSSID
		c.wk.Associated(c.assocSSID)
	}
	if cause&wifi.IntAssocErr != 0 {
		c.wk.Disassociated()
	}
	if cause&wifi.IntDisassoc != 0 {
		c.assocSSID = ""
		c.wk.Disassociated()
	}
	if cause&wifi.IntRx != 0 {
		c.pollRx()
	}
	c.env.IRQAck()
}

func (c *card) readScanResults() {
	count := int(c.mmio.Read32(wifi.RegScanCount))
	c.lastScan = c.lastScan[:0]
	for i := 0; i < count; i++ {
		rec := make([]byte, wifi.BSSEntrySize)
		if err := c.scanBuf.Read(i*wifi.BSSEntrySize, rec); err != nil {
			break
		}
		ssidLen := 0
		for ssidLen < 32 && rec[ssidLen] != 0 {
			ssidLen++
		}
		b := api.BSS{
			SSID:    string(rec[:ssidLen]),
			Channel: int(rec[40]) | int(rec[41])<<8,
			Signal:  int(rec[42]) - 128,
		}
		copy(b.BSSID[:], rec[32:38])
		c.lastScan = append(c.lastScan, b)
	}
	c.wk.ScanDone(append([]api.BSS(nil), c.lastScan...))
}

func (c *card) pollRx() {
	head := c.mmio.Read32(wifi.RegRxHead)
	for c.rxAck != head {
		off := int(c.rxAck) * wifi.RxSlotSize
		var hdr [4]byte
		if err := c.rxBuf.Read(off, hdr[:]); err != nil {
			break
		}
		length := int(hdr[0]) | int(hdr[1])<<8
		if length > 0 && length <= wifi.RxSlotSize-4 {
			var frame []byte
			if view, ok := c.rxBuf.Slice(off+4, length); ok {
				frame = view
			} else {
				frame = make([]byte, length)
				if err := c.rxBuf.Read(off+4, frame); err != nil {
					break
				}
			}
			c.RxFrames++
			c.wk.NetifRx(frame)
		}
		c.rxAck = (c.rxAck + 1) % wifi.RxSlots
		c.mmio.Write32(wifi.RegRxAck, c.rxAck)
	}
}
