package iwl

import (
	"bytes"
	"testing"

	"sud/internal/devices/wifi"
	apipkg "sud/internal/drivers/api"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/wifistack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

var wifiMAC = [6]byte{0x00, 0x21, 0x6A, 0x01, 0x02, 0x03}

type world struct {
	m    *hw.Machine
	k    *kernel.Kernel
	nic  *wifi.NIC
	air  *wifi.Air
	ap   *wifi.AP
	ifc  *wifistack.Iface
	proc *sudml.Process // nil in-kernel
}

func boot(t *testing.T, underSUD bool) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	ap := &wifi.AP{SSID: "csail", BSSID: [6]byte{0xAA, 1, 2, 3, 4, 5}, Channel: 6, Signal: -41}
	far := &wifi.AP{SSID: "guest", BSSID: [6]byte{0xAA, 9, 9, 9, 9, 9}, Channel: 11, Signal: -80}
	air := &wifi.Air{APs: []*wifi.AP{ap, far}}
	nic := wifi.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, wifiMAC, air)
	m.AttachDevice(nic)

	w := &world{m: m, k: k, nic: nic, air: air, ap: ap}
	if underSUD {
		proc, err := sudml.Start(k, nic, New(), "iwlagn", 1001)
		if err != nil {
			t.Fatal(err)
		}
		w.proc = proc
	} else {
		if _, err := k.BindInKernel(New(), nic); err != nil {
			t.Fatal(err)
		}
	}
	ifc, err := k.Wifi.Iface("wlan0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(); err != nil {
		t.Fatal(err)
	}
	w.ifc = ifc
	return w
}

// hosts runs a subtest against both the trusted and the untrusted host —
// the unmodified-driver claim, verified per behaviour.
func hosts(t *testing.T, f func(t *testing.T, w *world)) {
	t.Run("in-kernel", func(t *testing.T) { f(t, boot(t, false)) })
	t.Run("under-SUD", func(t *testing.T) { f(t, boot(t, true)) })
}

func scan(t *testing.T, w *world) {
	t.Helper()
	if err := w.ifc.Scan(); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(30 * sim.Millisecond)
	if len(w.ifc.LastScan) != 2 {
		t.Fatalf("scan found %d BSS, want 2", len(w.ifc.LastScan))
	}
}

func associate(t *testing.T, w *world, ssid string) {
	t.Helper()
	if err := w.ifc.Associate(ssid); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if w.ifc.AssocSSID != ssid || !w.ifc.Carrier {
		t.Fatalf("association state: ssid=%q carrier=%v", w.ifc.AssocSSID, w.ifc.Carrier)
	}
}

func TestFeatureSetMirrored(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		// §3.1.1: the feature query must be answerable without calling
		// the driver; the registered value is the driver's static set.
		want := staticFeatures()
		if w.ifc.Features != want {
			t.Fatalf("mirrored features %#x, want %#x", w.ifc.Features, want)
		}
	})
}

// staticFeatures returns the driver's static capability set.
func staticFeatures() uint32 { return (&card{}).Features() }

func TestScanFindsAPs(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		scan(t, w)
		byName := map[string]bool{}
		for _, b := range w.ifc.LastScan {
			byName[b.SSID] = true
			if b.SSID == "csail" && (b.Channel != 6 || b.Signal != -41) {
				t.Fatalf("csail BSS wrong: %+v", b)
			}
		}
		if !byName["csail"] || !byName["guest"] {
			t.Fatalf("scan results: %+v", w.ifc.LastScan)
		}
	})
}

func TestAssociateAndData(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		scan(t, w)
		var apGot [][]byte
		w.ap.Bridge = func(f []byte) { apGot = append(apGot, f) }
		associate(t, w, "csail")

		// Uplink data.
		payload := bytes.Repeat([]byte{0xAB}, 200)
		if err := w.ifc.SendFrame(payload); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(5 * sim.Millisecond)
		if len(apGot) != 1 || !bytes.Equal(apGot[0], payload) {
			t.Fatalf("AP received %d frames", len(apGot))
		}

		// Downlink data.
		var got [][]byte
		w.ifc.OnRxFrame = func(f []byte) { got = append(got, append([]byte(nil), f...)) }
		w.nic.DeliverFromAP([]byte("downlink-frame"))
		w.m.Loop.RunFor(5 * sim.Millisecond)
		if len(got) != 1 || string(got[0]) != "downlink-frame" {
			t.Fatalf("station received %d frames", len(got))
		}
	})
}

func TestAssociateUnknownSSIDFails(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		scan(t, w)
		err := w.ifc.Associate("not-a-network")
		w.m.Loop.RunFor(10 * sim.Millisecond)
		if w.ifc.Carrier {
			t.Fatal("associated with unknown SSID")
		}
		// In-kernel returns the error synchronously; under SUD the
		// async upcall reports through mirrored disassociation state.
		_ = err
	})
}

func TestDisassociate(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		scan(t, w)
		associate(t, w, "csail")
		if err := w.ifc.Disassociate(); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(5 * sim.Millisecond)
		if w.ifc.Carrier || w.ifc.AssocSSID != "" {
			t.Fatal("disassociation not mirrored")
		}
	})
}

func TestWifiConfinedUnderSUD(t *testing.T) {
	w := boot(t, true)
	scan(t, w)
	// The device's DMA is restricted to the driver's allocations.
	if err := w.nic.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("wifi device DMA to kernel memory succeeded under SUD")
	}
	// Kill and verify teardown.
	w.proc.Kill()
	if _, err := w.k.Wifi.Iface("wlan0"); err == nil {
		t.Fatal("wlan0 survived process kill")
	}
}

func TestScanResultsViaDowncallMirroring(t *testing.T) {
	w := boot(t, true)
	var cbResults int
	w.ifc.OnScanDone = func(r []apipkg.BSS) { cbResults = len(r) }
	scan(t, w)
	if cbResults != 2 {
		t.Fatalf("scan callback saw %d results", cbResults)
	}
	if w.proc.Wifi.MirrorUpdates == 0 {
		t.Fatal("no mirror updates for scan results")
	}
}
