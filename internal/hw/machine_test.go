package hw

import (
	"testing"

	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/mem"
	"sud/internal/pci"
)

// testDev is a DMA-capable device with one memory BAR of scratch registers.
type testDev struct {
	pci.FuncBase
	regs [4096]byte
}

func newTestDev(bdf pci.BDF, barBase uint64) *testDev {
	d := &testDev{}
	cfg := pci.NewConfigSpace(0x8086, 0x10D3, 0x02)
	cfg.SetBAR(0, barBase, 4096, false)
	cfg.AddMSICapability()
	cfg.Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	d.InitFunc(bdf, cfg)
	return d
}

func (d *testDev) MMIORead(bar int, off uint64, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(d.regs[(off+uint64(i))%4096])
	}
	return v
}
func (d *testDev) MMIOWrite(bar int, off uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		d.regs[(off+uint64(i))%4096] = byte(v >> (8 * i))
	}
}
func (d *testDev) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (d *testDev) IOWrite(bar int, off uint64, size int, v uint32) {}

func build(p Platform) (*Machine, *testDev) {
	m := NewMachine(p)
	d := newTestDev(pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(d)
	return m, d
}

func TestDMARequiresDomain(t *testing.T) {
	m, d := build(DefaultPlatform())
	if err := d.DMAWrite(DRAMBase, []byte{1}); err == nil {
		t.Fatal("DMA without an IOMMU domain succeeded")
	}
	if m.DMAErrors != 1 || len(m.IOMMU.Faults()) != 1 {
		t.Fatalf("errors=%d faults=%d", m.DMAErrors, len(m.IOMMU.Faults()))
	}
}

func TestDMAThroughDomain(t *testing.T) {
	m, d := build(DefaultPlatform())
	dom := m.IOMMU.NewDomain()
	phys, _ := m.Alloc.AllocPages(1)
	if err := dom.Map(0x40000000, phys, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	m.IOMMU.Attach(d.BDF(), dom)
	if err := d.DMAWrite(0x40000042, []byte{0xCA, 0xFE}); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	m.Mem.MustRead(phys+0x42, b)
	if b[0] != 0xCA || b[1] != 0xFE {
		t.Fatalf("DRAM contains % x", b)
	}
	got, err := d.DMARead(0x40000042, 2)
	if err != nil || got[0] != 0xCA {
		t.Fatalf("DMA read: % x, %v", got, err)
	}
}

func TestDMAOutsideMappingFaults(t *testing.T) {
	m, d := build(DefaultPlatform())
	dom := m.IOMMU.NewDomain()
	phys, _ := m.Alloc.AllocPages(1)
	if err := dom.Map(0x40000000, phys, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	m.IOMMU.Attach(d.BDF(), dom)
	// One page is mapped; the next page is not.
	if err := d.DMAWrite(0x40001000, []byte{1}); err == nil {
		t.Fatal("DMA outside mapping succeeded")
	}
}

func TestMSIWindowWriteRaisesInterrupt(t *testing.T) {
	m, d := build(DefaultPlatform()) // Intel: implicit MSI mapping
	m.IOMMU.Attach(d.BDF(), m.IOMMU.NewDomain())
	var fired int
	if err := m.IRQ.Register(0x41, func(irq.Vector) { fired++ }); err != nil {
		t.Fatal(err)
	}
	// Program and enable the device's MSI capability, then raise it.
	cfg := d.Config()
	off := cfg.MSICapOffset()
	cfg.Write(off+4, 4, 0xFEE00000)
	cfg.Write(off+8, 2, 0x41)
	cfg.Write(off+2, 2, pci.MSICtlEnable)
	if !d.RaiseMSI() {
		t.Fatal("RaiseMSI failed")
	}
	m.Loop.Run()
	if fired != 1 {
		t.Fatalf("interrupt fired %d times, want 1", fired)
	}
}

func TestMSIWindowReadRejected(t *testing.T) {
	m, d := build(DefaultPlatform())
	m.IOMMU.Attach(d.BDF(), m.IOMMU.NewDomain())
	if _, err := d.DMARead(0xFEE00000, 4); err == nil {
		t.Fatal("read from MSI window succeeded")
	}
	if m.DMAErrors == 0 {
		t.Fatal("MSI window read not counted as DMA error")
	}
}

func TestStrayDMAToMSIWindowIntel(t *testing.T) {
	// §5.2: on Intel without interrupt remapping, a stray DMA write to
	// the MSI address raises a real interrupt — the livelock weakness.
	m, d := build(DefaultPlatform())
	m.IOMMU.Attach(d.BDF(), m.IOMMU.NewDomain())
	var fired int
	if err := m.IRQ.Register(0x20, func(irq.Vector) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.DMAWrite(0xFEE00000, []byte{0x20, 0, 0, 0}); err != nil {
		t.Fatal("stray MSI DMA rejected on Intel; paper says it cannot be:", err)
	}
	m.Loop.Run()
	if fired != 1 {
		t.Fatal("stray MSI DMA did not raise an interrupt")
	}
}

func TestStrayDMAToMSIWindowBlockedByRemap(t *testing.T) {
	// §6: with interrupt remapping, the stray write reaches the MSI
	// controller but the remap table drops it (no valid IRTE).
	m, d := build(SecurePlatform())
	m.IOMMU.Attach(d.BDF(), m.IOMMU.NewDomain())
	var fired int
	if err := m.IRQ.Register(0x20, func(irq.Vector) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := d.DMAWrite(0xFEE00000, []byte{0x20, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	m.Loop.Run()
	if fired != 0 {
		t.Fatal("remap table did not block stray MSI")
	}
	if m.IRQ.Remap.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", m.IRQ.Remap.Blocked)
	}
}

func TestStrayDMAToMSIWindowBlockedOnAMD(t *testing.T) {
	// §6: AMD has no implicit MSI mapping, so with the MSI page unmapped
	// the stray write faults in the IOMMU.
	p := DefaultPlatform()
	p.IOMMU.Vendor = iommu.VendorAMD
	m, d := build(p)
	m.IOMMU.Attach(d.BDF(), m.IOMMU.NewDomain())
	if err := d.DMAWrite(0xFEE00000, []byte{0x20, 0, 0, 0}); err == nil {
		t.Fatal("stray MSI DMA succeeded on AMD with MSI page unmapped")
	}
}

func TestRedirectedP2PRequiresIOMMUGrant(t *testing.T) {
	m, a := build(DefaultPlatform())
	b := newTestDev(pci.MakeBDF(1, 1, 0), 0xFEB10000)
	m.AttachDevice(b)
	dom := m.IOMMU.NewDomain()
	m.IOMMU.Attach(a.BDF(), dom)

	// Without a mapping for B's BAR, the redirected P2P faults.
	if err := a.DMAWrite(0xFEB10000, []byte{0x11}); err == nil {
		t.Fatal("P2P DMA without IOMMU grant succeeded")
	}
	// With an explicit kernel grant it is delivered (device delegation,
	// §6 "Device delegation" would use this).
	if err := dom.Map(0xFEB10000, 0xFEB10000, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := a.DMAWrite(0xFEB10008, []byte{0x11}); err != nil {
		t.Fatal(err)
	}
	if b.regs[8] != 0x11 {
		t.Fatal("granted P2P write did not reach peer registers")
	}
}

func TestCPUMMIOAccess(t *testing.T) {
	m, d := build(DefaultPlatform())
	acct := m.CPU.Account("kernel")
	if err := m.MMIOWrite(acct, 0xFEB00010, 4, 0xA1B2C3D4); err != nil {
		t.Fatal(err)
	}
	v, err := m.MMIORead(acct, 0xFEB00010, 4)
	if err != nil || v != 0xA1B2C3D4 {
		t.Fatalf("MMIO read = %#x, %v", v, err)
	}
	if acct.Busy() == 0 {
		t.Fatal("MMIO access did not charge CPU time")
	}
	if _, err := m.MMIORead(acct, 0xDEAD0000, 4); err == nil {
		t.Fatal("MMIO read of unmapped address succeeded")
	}
	if err := m.MMIOWrite(acct, 0xDEAD0000, 4, 0); err == nil {
		t.Fatal("MMIO write of unmapped address succeeded")
	}
	_ = d
}

func TestLegacyBusP2PUnfiltered(t *testing.T) {
	p := DefaultPlatform()
	p.LegacyBus = true
	m, a := build(p)
	b := newTestDev(pci.MakeBDF(1, 1, 0), 0xFEB10000)
	m.AttachDevice(b)
	m.IOMMU.Attach(a.BDF(), m.IOMMU.NewDomain())
	// On a legacy shared bus the P2P write never reaches the IOMMU.
	if err := a.DMAWrite(0xFEB10000, []byte{0x22}); err != nil {
		t.Fatal(err)
	}
	if b.regs[0] != 0x22 {
		t.Fatal("legacy P2P write blocked")
	}
}

func TestRemapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("enabling remap without chipset support did not panic")
		}
	}()
	p := DefaultPlatform()
	p.EnableInterruptRemap = true // but InterruptRemapping stays false
	NewMachine(p)
}

func TestDRAMPopulated(t *testing.T) {
	m := NewMachine(DefaultPlatform())
	if !m.Mem.Populated(DRAMBase) || !m.Mem.Populated(DRAMBase+mem.Addr(DRAMSize)-mem.PageSize) {
		t.Fatal("DRAM range not populated")
	}
	if m.Mem.Populated(0) {
		t.Fatal("low memory unexpectedly populated")
	}
}
