// Package hw assembles the simulated platform: event loop, DRAM, PCIe
// fabric, IOMMU and interrupt controller, and implements the DMA path from a
// device TLP through ACS routing and IOMMU translation to DRAM or the MSI
// window (Figure 4 of the paper).
package hw

import (
	"fmt"

	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/trace"
)

// DRAM layout of the modelled machine.
const (
	// DRAMBase is where physical memory starts (we skip the legacy low
	// megabyte for clarity in dumps).
	DRAMBase mem.Addr = 0x00100000
	// DRAMSize is 512 MiB, plenty for rings, buffers and kernel state.
	DRAMSize uint64 = 512 << 20
)

// Platform selects the hardware configuration under test. The security
// matrix in §5.2/§6 varies exactly these knobs.
type Platform struct {
	// IOMMU is the DMA-remapping configuration (vendor, interrupt
	// remapping support).
	IOMMU iommu.Config
	// ACS configures the PCIe switch. Disabled ACS (or LegacyBus)
	// re-opens the peer-to-peer DMA attack.
	ACS pci.ACS
	// LegacyBus models a conventional shared PCI bus instead of PCIe.
	LegacyBus bool
	// EnableInterruptRemap turns the remap table on (requires
	// IOMMU.InterruptRemapping).
	EnableInterruptRemap bool
	// Seed for the machine's deterministic random source.
	Seed uint64
	// Cores overrides the modelled CPU core count; 0 keeps sim.Cores
	// (the paper's dual-core X301). The multi-flow scale scenarios model
	// a server-class DUT with more cores.
	Cores int
}

// DefaultPlatform is the paper's test machine: Intel VT-d without interrupt
// remapping support (§5.2), PCIe with full ACS.
func DefaultPlatform() Platform {
	return Platform{
		IOMMU: iommu.Config{Vendor: iommu.VendorIntel, InterruptRemapping: false},
		ACS:   pci.ACS{SourceValidation: true, P2PRedirect: true},
		Seed:  1,
	}
}

// SecurePlatform is the configuration §6 calls for: interrupt remapping
// available and enabled.
func SecurePlatform() Platform {
	p := DefaultPlatform()
	p.IOMMU.InterruptRemapping = true
	p.EnableInterruptRemap = true
	return p
}

// Machine is one simulated computer.
type Machine struct {
	Loop  *sim.Loop
	Mem   *mem.Memory
	CPU   *sim.CPUStats
	IOMMU *iommu.Unit
	IRQ   *irq.Controller
	RC    *pci.RootComplex
	Sw    *pci.Switch
	Vec   *irq.VectorAllocator
	Alloc *mem.Allocator
	Rand  *sim.Rand
	// Trace is the machine's observability plane: always-on latency
	// stamps plus the opt-in span recorder (trace.Tracer doc has the cost
	// discipline). Devices receive it at attach via SetTracer.
	Trace *trace.Tracer

	Platform Platform

	// DMAErrors counts device DMA transactions the fabric rejected.
	DMAErrors uint64
}

// NewMachine builds a machine for the given platform.
func NewMachine(p Platform) *Machine {
	loop := sim.NewLoop()
	cores := p.Cores
	if cores == 0 {
		cores = sim.Cores
	}
	m := &Machine{
		Loop:     loop,
		Mem:      mem.New(),
		CPU:      sim.NewCPUStats(cores),
		IRQ:      irq.NewController(loop),
		Vec:      irq.NewVectorAllocator(),
		Rand:     sim.NewRand(p.Seed),
		Platform: p,
	}
	m.Trace = trace.New(loop, m.CPU)
	m.Mem.AddRAMRange(DRAMBase, DRAMSize)
	m.Alloc = mem.NewAllocator(m.Mem, DRAMBase, DRAMSize)
	m.IOMMU = iommu.New(p.IOMMU, &loop.Clock)
	m.Sw = pci.NewSwitch("pcie-root-port", p.ACS)
	m.Sw.Legacy = p.LegacyBus
	m.RC = pci.NewRootComplex(m.Sw, m)
	if p.EnableInterruptRemap {
		if !p.IOMMU.InterruptRemapping {
			panic("hw: interrupt remapping enabled but not supported by the chipset")
		}
		m.IRQ.Remap = &irq.RemapTable{}
	}
	return m
}

// Now returns the machine's virtual time.
func (m *Machine) Now() sim.Time { return m.Loop.Now() }

// AttachDevice plugs a device into the root switch. Device models that
// implement SetTracer receive the machine's observability plane so their
// engines can stamp RX births and record dev.start/dev.complete hops.
func (m *Machine) AttachDevice(d pci.Device) {
	m.Sw.AttachDevice(d)
	if ts, ok := d.(interface{ SetTracer(*trace.Tracer) }); ok {
		ts.SetTracer(m.Trace)
	}
}

// HandleUpstream implements pci.UpstreamHandler: every TLP that reaches the
// root complex is translated by the IOMMU and then delivered to DRAM, the
// MSI window, or (for redirected P2P the IOMMU explicitly permits) a device
// BAR.
func (m *Machine) HandleUpstream(tlp pci.TLP) pci.Completion {
	write := tlp.Type == pci.MemWrite
	phys, _, err := m.IOMMU.TranslateQ(tlp.Requester, tlp.Stream, tlp.Addr, write)
	if err != nil {
		m.DMAErrors++
		return pci.Completion{Err: err}
	}

	if iommu.InMSIWindow(phys) {
		if !write {
			m.DMAErrors++
			return pci.Completion{Err: &pci.RouteError{TLP: tlp, Reason: "read from MSI window"}}
		}
		m.IRQ.MSIWrite(tlp.Requester, phys, tlp.Data)
		return pci.Completion{}
	}

	// Redirected peer-to-peer: the translated address may point at
	// another device's BAR. Reaching here required an explicit IOMMU
	// mapping, i.e. a deliberate kernel grant.
	if dev, bar, off, ok := m.RC.FindMMIO(phys); ok {
		routed := tlp
		routed.Addr = phys
		return pci.DeliverMMIO(dev, bar, off, routed)
	}

	switch tlp.Type {
	case pci.MemWrite:
		if err := m.Mem.Write(phys, tlp.Data); err != nil {
			m.DMAErrors++
			return pci.Completion{Err: err}
		}
		return pci.Completion{}
	case pci.MemRead:
		buf := make([]byte, tlp.Len)
		if err := m.Mem.Read(phys, buf); err != nil {
			m.DMAErrors++
			return pci.Completion{Err: err}
		}
		return pci.Completion{Data: buf}
	default:
		m.DMAErrors++
		return pci.Completion{Err: &pci.RouteError{TLP: tlp, Reason: "unsupported TLP type"}}
	}
}

// MMIORead performs a CPU-initiated read of a device register, charging the
// given CPU account the uncached-access cost.
func (m *Machine) MMIORead(acct *sim.CPUAccount, addr mem.Addr, size int) (uint64, error) {
	dev, bar, off, ok := m.RC.FindMMIO(addr)
	if !ok {
		return 0, fmt.Errorf("hw: MMIO read of unmapped address %#x", uint64(addr))
	}
	if acct != nil {
		acct.Charge(sim.CostMMIORead)
	}
	return dev.MMIORead(bar, off, size), nil
}

// MMIOWrite performs a CPU-initiated write of a device register.
func (m *Machine) MMIOWrite(acct *sim.CPUAccount, addr mem.Addr, size int, v uint64) error {
	dev, bar, off, ok := m.RC.FindMMIO(addr)
	if !ok {
		return fmt.Errorf("hw: MMIO write of unmapped address %#x", uint64(addr))
	}
	if acct != nil {
		acct.Charge(sim.CostMMIOWrite)
	}
	dev.MMIOWrite(bar, off, size, v)
	return nil
}
