// Package irq models the interrupt delivery path SUD must secure (§3.2.2):
// an MSI controller that turns memory writes in the 0xFEE00000 window into
// CPU vectors, an optional VT-d-style interrupt remapping table with source
// validation, and interrupt-rate accounting for storm/livelock detection.
//
// The key property from the paper: "it is impossible to determine whether a
// write to the MSI address was caused by a real interrupt, or a stray DMA
// write to the same address". Without interrupt remapping, any DMA the IOMMU
// lets through to the MSI window becomes a real CPU interrupt.
package irq

import (
	"fmt"

	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Vector is an x86 interrupt vector. Vectors below 0x20 are CPU exceptions
// and cannot be assigned to devices.
type Vector uint8

// FirstUsable is the lowest vector assignable to a device interrupt.
const FirstUsable Vector = 0x20

// Handler processes one delivered interrupt. It runs in (simulated)
// interrupt context.
type Handler func(v Vector)

// IRTE is one interrupt remapping table entry. With remapping enabled, an
// MSI write is treated as an index into this table rather than as a raw
// vector, and the entry's source field is validated against the requester —
// which is how SUD "disable[s] MSI interrupts from that device altogether"
// when masking fails (§3.2.2).
type IRTE struct {
	Valid  bool
	Masked bool
	Source pci.BDF // only this requester may trigger the entry
	Vector Vector
}

// RemapTable is the interrupt remapping table.
type RemapTable struct {
	entries [256]IRTE
	// Blocked counts messages dropped by the table (invalid entry,
	// masked entry, or source mismatch).
	Blocked uint64
}

// Set installs entry idx.
func (t *RemapTable) Set(idx uint8, e IRTE) { t.entries[idx] = e }

// Get returns entry idx.
func (t *RemapTable) Get(idx uint8) IRTE { return t.entries[idx] }

// SetMasked masks or unmasks entry idx.
func (t *RemapTable) SetMasked(idx uint8, masked bool) {
	t.entries[idx].Masked = masked
}

// Controller is the platform interrupt controller (MSI controller + LAPIC
// collapsed into one component).
type Controller struct {
	loop *sim.Loop

	// Remap is the interrupt remapping table; nil when the chipset does
	// not support interrupt remapping (like the paper's test machine,
	// §5.2) or the OS has not enabled it.
	Remap *RemapTable

	handlers [256]Handler
	counts   [256]uint64
	spurious uint64

	// DeliveryLatency is the MSI-write-to-handler-dispatch latency.
	DeliveryLatency sim.Duration

	// Storm detection: a sliding-window rate estimator per vector.
	StormThreshold int          // deliveries per window to trigger OnStorm
	StormWindow    sim.Duration // window length
	OnStorm        func(v Vector, rate int)
	windowStart    [256]sim.Time
	windowCount    [256]int
	stormSignalled [256]bool
}

// NewController returns a controller with SUD's default storm policy
// (an interrupt rate above ~50k/s per vector flags a storm).
func NewController(loop *sim.Loop) *Controller {
	return &Controller{
		loop:            loop,
		DeliveryLatency: 1 * sim.Microsecond,
		StormThreshold:  500,
		StormWindow:     10 * sim.Millisecond,
	}
}

// Register installs h as the handler for vector v. Registering nil removes
// the handler; interrupts on unhandled vectors count as spurious.
func (c *Controller) Register(v Vector, h Handler) error {
	if v < FirstUsable {
		return fmt.Errorf("irq: vector %#x reserved for CPU exceptions", v)
	}
	c.handlers[v] = h
	return nil
}

// MSIWrite processes a (post-IOMMU-translation) memory write landing in the
// MSI address window. source is the TLP's requester ID. The low byte of the
// message data selects the vector (no remapping) or the remap table index
// (remapping enabled).
func (c *Controller) MSIWrite(source pci.BDF, addr mem.Addr, data []byte) {
	if len(data) == 0 {
		c.spurious++
		return
	}
	idx := data[0]
	if c.Remap != nil {
		e := c.Remap.Get(idx)
		if !e.Valid || e.Masked || e.Source != source {
			c.Remap.Blocked++
			return
		}
		c.deliver(e.Vector)
		return
	}
	// No remapping: the data byte is the vector; any requester that can
	// write the MSI window can raise any interrupt.
	c.deliver(Vector(idx))
}

func (c *Controller) deliver(v Vector) {
	c.counts[v]++
	c.trackStorm(v)
	c.loop.After(c.DeliveryLatency, func() {
		h := c.handlers[v]
		if h == nil {
			c.spurious++
			return
		}
		h(v)
	})
}

// Inject delivers an interrupt directly (used by legacy/internal sources and
// tests). It bypasses the remap table, as a CPU-internal interrupt would.
func (c *Controller) Inject(v Vector) { c.deliver(v) }

func (c *Controller) trackStorm(v Vector) {
	now := c.loop.Now()
	if now-c.windowStart[v] > c.StormWindow {
		c.windowStart[v] = now
		c.windowCount[v] = 0
		c.stormSignalled[v] = false
	}
	c.windowCount[v]++
	if c.windowCount[v] >= c.StormThreshold && !c.stormSignalled[v] {
		c.stormSignalled[v] = true
		if c.OnStorm != nil {
			c.OnStorm(v, c.windowCount[v])
		}
	}
}

// Count returns how many interrupts were delivered on vector v.
func (c *Controller) Count(v Vector) uint64 { return c.counts[v] }

// Spurious returns the number of interrupts with no registered handler.
func (c *Controller) Spurious() uint64 { return c.spurious }

// TotalDelivered sums deliveries across all vectors.
func (c *Controller) TotalDelivered() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// VectorAllocator hands out device vectors. The kernel owns one.
type VectorAllocator struct {
	next Vector
}

// NewVectorAllocator starts allocation at FirstUsable.
func NewVectorAllocator() *VectorAllocator { return &VectorAllocator{next: FirstUsable} }

// Alloc returns the next free vector.
func (a *VectorAllocator) Alloc() (Vector, error) {
	if a.next == 0 { // wrapped
		return 0, fmt.Errorf("irq: out of interrupt vectors")
	}
	v := a.next
	a.next++
	return v, nil
}
