package irq

import (
	"testing"

	"sud/internal/pci"
	"sud/internal/sim"
)

var src = pci.MakeBDF(1, 0, 0)
var other = pci.MakeBDF(1, 1, 0)

func setup() (*sim.Loop, *Controller) {
	l := sim.NewLoop()
	return l, NewController(l)
}

func TestMSIDeliversVector(t *testing.T) {
	l, c := setup()
	var got []Vector
	if err := c.Register(0x41, func(v Vector) { got = append(got, v) }); err != nil {
		t.Fatal(err)
	}
	c.MSIWrite(src, 0xFEE00000, []byte{0x41, 0, 0, 0})
	if len(got) != 0 {
		t.Fatal("interrupt delivered synchronously, want delivery latency")
	}
	l.Run()
	if len(got) != 1 || got[0] != 0x41 {
		t.Fatalf("delivered %v", got)
	}
	if c.Count(0x41) != 1 || c.TotalDelivered() != 1 {
		t.Fatal("counters wrong")
	}
}

func TestMSIDeliveryLatency(t *testing.T) {
	l, c := setup()
	var at sim.Time
	must(t, c.Register(0x30, func(Vector) { at = l.Now() }))
	c.MSIWrite(src, 0xFEE00000, []byte{0x30})
	l.Run()
	if at != c.DeliveryLatency {
		t.Fatalf("delivered at %v, want %v", at, c.DeliveryLatency)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnhandledVectorIsSpurious(t *testing.T) {
	l, c := setup()
	c.MSIWrite(src, 0xFEE00000, []byte{0x55})
	l.Run()
	if c.Spurious() != 1 {
		t.Fatalf("spurious = %d, want 1", c.Spurious())
	}
	c.MSIWrite(src, 0xFEE00000, nil)
	if c.Spurious() != 2 {
		t.Fatal("empty MSI payload not counted as spurious")
	}
}

func TestReservedVectorRegistration(t *testing.T) {
	_, c := setup()
	if err := c.Register(0x08, func(Vector) {}); err == nil {
		t.Fatal("registered handler on exception vector")
	}
}

func TestRemapTableValidatesSource(t *testing.T) {
	l, c := setup()
	c.Remap = &RemapTable{}
	c.Remap.Set(5, IRTE{Valid: true, Source: src, Vector: 0x60})
	var got int
	must(t, c.Register(0x60, func(Vector) { got++ }))

	// Correct source: delivered.
	c.MSIWrite(src, 0xFEE00000, []byte{5})
	// Spoofed source: blocked. This is the property that closes the
	// stray-DMA-to-MSI-address attack (§3.2.2).
	c.MSIWrite(other, 0xFEE00000, []byte{5})
	// Invalid entry: blocked.
	c.MSIWrite(src, 0xFEE00000, []byte{6})
	l.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if c.Remap.Blocked != 2 {
		t.Fatalf("blocked = %d, want 2", c.Remap.Blocked)
	}
}

func TestRemapTableMasking(t *testing.T) {
	l, c := setup()
	c.Remap = &RemapTable{}
	c.Remap.Set(7, IRTE{Valid: true, Source: src, Vector: 0x61})
	var got int
	must(t, c.Register(0x61, func(Vector) { got++ }))
	c.Remap.SetMasked(7, true)
	c.MSIWrite(src, 0xFEE00000, []byte{7})
	l.Run()
	if got != 0 {
		t.Fatal("masked IRTE delivered")
	}
	c.Remap.SetMasked(7, false)
	c.MSIWrite(src, 0xFEE00000, []byte{7})
	l.Run()
	if got != 1 {
		t.Fatal("unmasked IRTE did not deliver")
	}
}

func TestWithoutRemapAnySourceRaisesAnyVector(t *testing.T) {
	// The vulnerability on the paper's test machine: no remap table, so
	// a stray DMA write to the MSI window raises an arbitrary vector.
	l, c := setup()
	var got int
	must(t, c.Register(0x20, func(Vector) { got++ }))
	c.MSIWrite(other, 0xFEE00000, []byte{0x20})
	l.Run()
	if got != 1 {
		t.Fatal("raw MSI write did not deliver without remapping")
	}
}

func TestStormDetection(t *testing.T) {
	l, c := setup()
	must(t, c.Register(0x42, func(Vector) {}))
	var stormVec Vector
	var stormRate int
	c.OnStorm = func(v Vector, rate int) { stormVec, stormRate = v, rate }
	for i := 0; i < c.StormThreshold; i++ {
		c.MSIWrite(src, 0xFEE00000, []byte{0x42})
	}
	if stormVec != 0x42 || stormRate < c.StormThreshold {
		t.Fatalf("storm not detected: vec=%#x rate=%d", stormVec, stormRate)
	}
	// Signalled only once per window.
	stormRate = 0
	c.MSIWrite(src, 0xFEE00000, []byte{0x42})
	if stormRate != 0 {
		t.Fatal("storm signalled twice in one window")
	}
	l.Run()
}

func TestStormWindowResets(t *testing.T) {
	l, c := setup()
	must(t, c.Register(0x42, func(Vector) {}))
	storms := 0
	c.OnStorm = func(Vector, int) { storms++ }
	// Slow interrupts spread over many windows: no storm.
	for i := 0; i < 3*c.StormThreshold; i++ {
		c.MSIWrite(src, 0xFEE00000, []byte{0x42})
		l.RunFor(c.StormWindow / sim.Duration(c.StormThreshold) * 2)
	}
	if storms != 0 {
		t.Fatalf("slow interrupt rate flagged as storm %d times", storms)
	}
}

func TestInjectBypassesRemap(t *testing.T) {
	l, c := setup()
	c.Remap = &RemapTable{} // empty: would block everything
	var got int
	must(t, c.Register(0x44, func(Vector) { got++ }))
	c.Inject(0x44)
	l.Run()
	if got != 1 {
		t.Fatal("Inject did not deliver")
	}
}

func TestVectorAllocator(t *testing.T) {
	a := NewVectorAllocator()
	v1, err := a.Alloc()
	must(t, err)
	v2, err := a.Alloc()
	must(t, err)
	if v1 != FirstUsable || v2 != FirstUsable+1 {
		t.Fatalf("allocated %#x, %#x", v1, v2)
	}
	for i := 0; i < 1000; i++ {
		if _, err := a.Alloc(); err != nil {
			return // exhaustion reported, good
		}
	}
	t.Fatal("allocator never exhausted")
}
