package shadow

import (
	"testing"

	"sud/internal/drivers/api"
)

func TestBlockLogRecordAndReplaySchedule(t *testing.T) {
	s := NewBlock(api.BlockGeometry{BlockSize: 512, Blocks: 64})
	// Interleave two queues; queue order must be per-queue submission order.
	s.RecordSubmit(1, api.BlockRequest{LBA: 10, Tag: 0})
	s.RecordSubmit(0, api.BlockRequest{LBA: 20, Tag: 1})
	s.RecordSubmit(1, api.BlockRequest{Write: true, LBA: 11, Tag: 2, Data: []byte{1, 2}})
	s.RecordSubmit(0, api.BlockRequest{LBA: 21, Tag: 3})
	if s.Pending() != 4 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.RecordComplete(1) // LBA 20 finished: must not replay
	byQ := s.PendingByQueue(2)
	if len(byQ[0]) != 1 || byQ[0][0].Req.LBA != 21 {
		t.Fatalf("queue 0 schedule: %+v", byQ[0])
	}
	if len(byQ[1]) != 2 || byQ[1][0].Req.LBA != 10 || byQ[1][1].Req.LBA != 11 {
		t.Fatalf("queue 1 schedule out of order: %+v", byQ[1])
	}
	// The schedule is a view: building it must not consume the log (a
	// second kill during replay rebuilds from what is still unfinished).
	if s.Pending() != 3 {
		t.Fatalf("building the schedule consumed the log: %d", s.Pending())
	}
}

func TestBlockLogCopiesWritePayloads(t *testing.T) {
	s := NewBlock(api.BlockGeometry{BlockSize: 2, Blocks: 8})
	buf := []byte{0xAA, 0xBB}
	s.RecordSubmit(0, api.BlockRequest{Write: true, LBA: 1, Tag: 7, Data: buf})
	buf[0] = 0xEE // the block core's buffer is reused after completion
	got := s.PendingByQueue(1)[0][0].Req.Data
	if got[0] != 0xAA || got[1] != 0xBB {
		t.Fatalf("log aliased the caller's payload: %v", got)
	}
}

func TestBlockLogClampsForeignQueues(t *testing.T) {
	s := NewBlock(api.BlockGeometry{BlockSize: 512, Blocks: 64})
	s.RecordSubmit(9, api.BlockRequest{LBA: 1, Tag: 0}) // queue shrank across restart
	byQ := s.PendingByQueue(2)
	if len(byQ[0]) != 1 {
		t.Fatalf("out-of-range queue not clamped: %+v", byQ)
	}
}

func TestBlockLogReset(t *testing.T) {
	s := NewBlock(api.BlockGeometry{BlockSize: 512, Blocks: 64})
	s.RecordSubmit(0, api.BlockRequest{LBA: 1, Tag: 0})
	s.Reset()
	if s.Pending() != 0 {
		t.Fatal("reset kept log entries")
	}
}
