// Package shadow is the kernel's shadow-driver recovery layer — the
// mechanism that makes the death of an untrusted driver process invisible to
// applications. The paper points at exactly this extension (§2: "SUD's
// architecture could also use shadow drivers to gracefully restart untrusted
// device drivers"; §5.2: "It is also relatively simple to restart a crashed
// device driver"); this package supplies the state it needs.
//
// A shadow object passively mirrors, via hooks on the existing upcall paths,
// everything the kernel would have to re-establish if the driver process
// were killed this instant:
//
//   - Block devices (Block): the namespace geometry mirrored at registration
//     and a per-queue in-flight request log keyed by the kernel-allocated
//     tag. Every request the block core dispatches to the driver is recorded
//     (write payloads copied, since the driver may die holding the only
//     reference) and erased when its completion is delivered. After a kill,
//     the log IS the set of requests the dead incarnation swallowed — the
//     recovery path replays it, in per-queue submission order and under the
//     original tags, against the restarted process.
//
//   - Network interfaces (Net): the static configuration snapshot — MAC,
//     IP address, admin up state, carrier, and the armed queue count (which
//     under RSS also determines the RETA programming the restarted driver
//     re-derives at open) — plus a bounded per-queue TX log of frames handed
//     to the driver but not yet confirmed transmitted (the xmit-done credit
//     is the confirmation). After a kill the log is the set of frames the
//     dead incarnation swallowed; recovery replays them through the
//     restarted driver, so a kill is invisible at the packet level too. A
//     frame that was transmitted but whose credit died with the process
//     replays as a duplicate — at-least-once, like a replayed block write.
//
// The shadow is recording only: it never talks to a driver. The recovery
// protocol around it lives in the device cores (internal/kernel/blockdev,
// internal/kernel/netstack — parking, adoption, replay, and the per-device
// epoch that lets proxies reject completions from a dead incarnation) and in
// the supervisor (internal/sudml), which detects death, respawns the
// process, and drives replay.
package shadow

import (
	"sud/internal/drivers/api"
)

// PendingBlock is one logged in-flight block request: the queue it was
// dispatched on, the request itself (tag included), and its submission
// sequence number, which fixes the per-queue replay order.
type PendingBlock struct {
	Q   int
	Req api.BlockRequest
	Seq uint64
}

// Block is the shadow of one block device: geometry plus the in-flight
// request log.
type Block struct {
	// Geom is the namespace geometry mirrored at registration — the static
	// state (§3.3) a restarted driver must agree on before adoption.
	Geom api.BlockGeometry

	seq uint64
	log map[uint64]*PendingBlock // tag → pending request

	// Replayed counts requests re-submitted across all recoveries.
	Replayed uint64
}

// NewBlock returns an empty block shadow for a device with the given
// geometry.
func NewBlock(geom api.BlockGeometry) *Block {
	return &Block{Geom: geom, log: make(map[uint64]*PendingBlock)}
}

// RecordSubmit logs one request handed to the driver on queue q. The write
// payload is copied: the block core's buffer is released on completion, but
// the log entry must outlive a driver that dies without completing.
func (s *Block) RecordSubmit(q int, req api.BlockRequest) {
	if req.Data != nil {
		req.Data = append([]byte(nil), req.Data...)
	}
	s.log[req.Tag] = &PendingBlock{Q: q, Req: req, Seq: s.seq}
	s.seq++
}

// RecordComplete erases tag's log entry: its completion was delivered, so a
// future recovery must not replay it (a write replayed after completing
// would be harmlessly idempotent, but a read would complete twice).
func (s *Block) RecordComplete(tag uint64) {
	delete(s.log, tag)
}

// Pending reports the logged in-flight request count.
func (s *Block) Pending() int { return len(s.log) }

// PendingByQueue returns the log split per queue (clamped to nq queues),
// each queue's requests in original submission order — the replay schedule.
// The log itself is untouched: entries leave it only through RecordComplete,
// so a second kill during replay rebuilds the schedule from what is still
// genuinely unfinished.
func (s *Block) PendingByQueue(nq int) [][]PendingBlock {
	if nq < 1 {
		nq = 1
	}
	out := make([][]PendingBlock, nq)
	for _, p := range s.log {
		q := p.Q
		if q < 0 || q >= nq {
			q = 0
		}
		out[q] = append(out[q], *p)
	}
	for q := range out {
		sortBySeq(out[q])
	}
	return out
}

// PendingForQueue returns only queue q's unfinished requests in original
// submission order — the replay schedule for a surgical single-queue
// recovery. Queue indices are clamped the same way PendingByQueue clamps
// them, so an entry logged against an out-of-range queue replays on queue 0.
// Like PendingByQueue this is non-consuming: entries leave the log only
// through RecordComplete.
func (s *Block) PendingForQueue(q, nq int) []PendingBlock {
	if nq < 1 {
		nq = 1
	}
	var out []PendingBlock
	for _, p := range s.log {
		pq := p.Q
		if pq < 0 || pq >= nq {
			pq = 0
		}
		if pq == q {
			out = append(out, *p)
		}
	}
	sortBySeq(out)
	return out
}

// Reset drops the log (device unregistered while recovering: the parked
// requests were failed, so there is nothing left to replay).
func (s *Block) Reset() {
	s.log = make(map[uint64]*PendingBlock)
}

// sortBySeq orders a replay slice by submission sequence (insertion sort:
// replay slices are bounded by the per-queue hardware depth).
func sortBySeq(ps []PendingBlock) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Seq < ps[j-1].Seq; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Net is the shadow of one network interface: the configuration snapshot
// captured at each driver death (the netstack's BeginRecovery hook). The
// replay path consumes IP and Up — the admin state CompleteRecovery
// restores before re-opening the driver. The remaining fields are the
// recorded mirror of what the restart must reproduce by other means, kept
// so recovery can be *verified* rather than trusted: MAC is the adoption
// identity (the live interface carries the same value the stack matches
// on), Carrier must reappear through the restarted driver's own mirroring
// downcall, and Queues is the ring fan-out the restarted driver must
// re-arm (under RSS, the range its RETA programming round-robins over) —
// the recovery tests and the DriverRevive matrix row check all three.
type Net struct {
	MAC     [6]byte
	IP      [4]byte
	Up      bool
	Carrier bool
	Queues  int

	// Snapshots counts BeginRecovery captures (one per death).
	Snapshots uint64

	// txLog is the per-queue FIFO of unconfirmed transmitted frames. Entries
	// are appended by RecordXmit when the netstack hands a frame to the
	// driver and removed — oldest first, matching the driver's in-order ring
	// reclaim — by ConfirmXmit when the xmit-done credit returns.
	txLog [][][]byte

	// TxLogged / TxConfirmed / TxReplayed / TxOverflow count log appends,
	// credit-confirmed removals, frames re-submitted by recoveries, and
	// oldest-entry evictions at TxLogCap.
	TxLogged, TxConfirmed, TxReplayed, TxOverflow uint64
}

// TxLogCap bounds each queue's unconfirmed-frame log. It matches the TX
// slot-pool depth — a queue can never have more frames genuinely in flight —
// so eviction only fires when confirmations are being withheld.
const TxLogCap = 256

func (s *Net) queueLog(q int) int {
	if q < 0 {
		q = 0
	}
	for len(s.txLog) <= q {
		s.txLog = append(s.txLog, nil)
	}
	return q
}

// RecordXmit logs one frame handed to the driver on queue q. The log takes
// ownership of the slice: callers pass a private copy taken before the
// driver (which owns the original after StartXmit) could touch it, so the
// entry outlives a driver that dies holding the frame.
func (s *Net) RecordXmit(q int, frame []byte) {
	q = s.queueLog(q)
	if len(s.txLog[q]) >= TxLogCap {
		s.txLog[q] = s.txLog[q][1:]
		s.TxOverflow++
	}
	s.txLog[q] = append(s.txLog[q], frame)
	s.TxLogged++
}

// ConfirmXmit erases queue q's oldest unconfirmed frame: its xmit-done
// credit arrived, so the frame left the device and must not be replayed.
func (s *Net) ConfirmXmit(q int) {
	q = s.queueLog(q)
	if len(s.txLog[q]) == 0 {
		return
	}
	s.txLog[q] = s.txLog[q][1:]
	s.TxConfirmed++
}

// PendingTx reports queue q's unconfirmed-frame count.
func (s *Net) PendingTx(q int) int {
	return len(s.txLog[s.queueLog(q)])
}

// TakePendingTx consumes and returns queue q's unconfirmed frames in
// original submission order — the replay schedule. Unlike the block log
// (keyed by tag, erased on completion), replayed frames re-enter the log
// through the normal RecordXmit path as the recovery re-submits them, so
// the entries must leave it first.
func (s *Net) TakePendingTx(q int) [][]byte {
	q = s.queueLog(q)
	out := s.txLog[q]
	s.txLog[q] = nil
	return out
}

// ResetTx drops the whole TX log (interface unregistered while recovering:
// nothing is left to replay).
func (s *Net) ResetTx() {
	s.txLog = nil
}
