package netstack

import "fmt"

// UDPSock is a bound UDP socket. Receive is callback-based: OnRecv runs in
// simulated application context (its CPU cost is charged by the harness that
// installs it).
type UDPSock struct {
	Port   uint16
	OnRecv func(payload []byte, srcIP IP, srcPort uint16)

	RxDatagrams uint64
	RxBytes     uint64
}

// UDPBind binds a socket to port.
func (s *Stack) UDPBind(port uint16, onRecv func(payload []byte, srcIP IP, srcPort uint16)) (*UDPSock, error) {
	if _, dup := s.udp[port]; dup {
		return nil, fmt.Errorf("netstack: UDP port %d in use", port)
	}
	sock := &UDPSock{Port: port, OnRecv: onRecv}
	s.udp[port] = sock
	return sock, nil
}

// UDPClose releases the port.
func (s *Stack) UDPClose(port uint16) { delete(s.udp, port) }

func (u *UDPSock) deliver(payload []byte, src IP, sport uint16) {
	u.RxDatagrams++
	u.RxBytes += uint64(len(payload))
	if u.OnRecv != nil {
		u.OnRecv(payload, src, sport)
	}
}

// TCPReceiver is the DUT-side TCP endpoint for TCP_STREAM: it accepts
// in-order segments, acknowledges every other segment (delayed ACK), and
// reports received payload to the application callback. Out-of-order
// segments are dropped (the benchmark link never reorders).
type TCPReceiver struct {
	Port   uint16
	OnData func(n int)

	rcvNxt     uint32
	started    bool
	unacked    int
	RxSegments uint64
	RxBytes    uint64
	OutOfOrder uint64
}

// AckEvery controls the delayed-ACK ratio (Linux acks every 2nd full
// segment).
const AckEvery = 2

// TCPListen installs a receiver on port.
func (s *Stack) TCPListen(port uint16, onData func(n int)) (*TCPReceiver, error) {
	if _, dup := s.tcp[port]; dup {
		return nil, fmt.Errorf("netstack: TCP port %d in use", port)
	}
	r := &TCPReceiver{Port: port, OnData: onData}
	s.tcp[port] = r
	return r, nil
}

// TCPCloseListener releases the port.
func (s *Stack) TCPCloseListener(port uint16) { delete(s.tcp, port) }

func (r *TCPReceiver) segment(ifc *Iface, eh EthHeader, ih IPv4Header, th TCPHeader, payload []byte) {
	s := ifc.stack
	if th.Flags&TCPSyn != 0 {
		// Accept the stream: next expected byte follows the SYN.
		r.rcvNxt = th.Seq + 1
		r.started = true
		r.sendAck(ifc, eh, ih, th)
		return
	}
	if !r.started {
		return
	}
	if th.Seq != r.rcvNxt {
		r.OutOfOrder++
		// Re-ACK the expected sequence so the sender retransmits.
		r.sendAck(ifc, eh, ih, th)
		return
	}
	r.rcvNxt += uint32(len(payload))
	r.RxSegments++
	r.RxBytes += uint64(len(payload))
	if r.OnData != nil && len(payload) > 0 {
		s.Acct.Charge(CostSockDeliver)
		r.OnData(len(payload))
	}
	r.unacked++
	if r.unacked >= AckEvery || th.Flags&TCPPsh != 0 || th.Flags&TCPFin != 0 {
		r.unacked = 0
		r.sendAck(ifc, eh, ih, th)
	}
}

func (r *TCPReceiver) sendAck(ifc *Iface, eh EthHeader, ih IPv4Header, th TCPHeader) {
	s := ifc.stack
	ack := BuildTCPFrame(ifc.MAC, eh.Src, ih.Dst, ih.Src, TCPHeader{
		SrcPort: th.DstPort,
		DstPort: th.SrcPort,
		Seq:     0,
		Ack:     r.rcvNxt,
		Flags:   TCPAck,
		Window:  0xFFFF,
	}, nil)
	// ACK generation is lighter than a data send.
	if err := s.xmit(ifc, ack); err != nil {
		s.TxErrors++
	}
}
