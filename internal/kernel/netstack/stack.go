package netstack

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel/shadow"
	"sud/internal/sim"
	"sud/internal/trace"
)

// Path costs of the stack itself, per packet, excluding per-byte checksum
// and copy work (see internal/sim/costs.go for the calibration rationale).
const (
	// CostRxPath is IP/transport demux, skb bookkeeping and socket
	// queueing on receive.
	CostRxPath sim.Duration = 900
	// CostTxPath is skb alloc, header construction and queueing on send.
	CostTxPath sim.Duration = 1100
	// CostSockDeliver is waking/running the receiving application
	// (amortised recv syscall).
	CostSockDeliver sim.Duration = 400
)

// Stack is the kernel network core.
type Stack struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount // the kernel CPU account

	// Trace is the machine's tracing plane (nil-safe; span events cost
	// nothing unless enabled). Net proxies reach it through here, the way
	// block proxies reach it through blockdev.Manager.
	Trace *trace.Tracer

	ifaces map[string]*Iface
	udp    map[uint16]*UDPSock
	tcp    map[uint16]*TCPReceiver

	// adopting holds interfaces whose driver died under supervision,
	// awaiting adoption by the restarted driver's registration.
	adopting map[string]*Iface

	// standbys holds hot-standby drivers pre-registered for a live
	// interface (the failover half of adoption): the MAC identity check
	// adoption performs at restart time runs at arm time instead.
	standbys map[string]api.NetDevice

	// Firewall, if set, inspects every received frame; returning false
	// drops it. It runs before payload delivery, like a netfilter hook.
	Firewall func(frame []byte) bool

	// Counters.
	RxFrames, RxDrops  uint64
	TxFrames, TxErrors uint64
	FirewallDrops      uint64
}

// New returns an empty stack charging CPU to acct.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Stack {
	return &Stack{
		Loop:     loop,
		Acct:     acct,
		ifaces:   make(map[string]*Iface),
		udp:      make(map[uint16]*UDPSock),
		tcp:      make(map[uint16]*TCPReceiver),
		adopting: make(map[string]*Iface),
		standbys: make(map[string]api.NetDevice),
	}
}

// IfaceQueue is one per-queue context of an interface: its own TX stop/wake
// state and its own RX delivery counters. Splitting this state per queue is
// what lets one backpressured queue stall only the flows hashed onto it —
// sibling queues keep transmitting and receiving (the multi-queue netstack
// item on the roadmap).
type IfaceQueue struct {
	ID int

	txStopped bool

	// Surgical recovery state: the supervisor quarantined this one queue
	// pair (its DMA sub-domain revoked) while siblings keep flowing.
	// Epoch is the queue's own incarnation counter; recovering stops TX
	// on this queue and drops its RX deliveries (packets are
	// fire-and-forget — there is nothing to replay). ParkedRxDrops
	// counts frames dropped while parked.
	Epoch         uint64
	recovering    bool
	ParkedRxDrops uint64

	// RxFrames / TxFrames count per-queue traffic through this context.
	RxFrames, TxFrames uint64

	// RxLat is the per-queue end-to-end receive latency histogram: device
	// DMA of the frame → stack delivery. The device model stamps the
	// frame's birth (trace.Mark keyed by buffer IOVA) and the SUD proxy
	// records the delta here at delivery; always on, zero virtual cost.
	RxLat trace.Hist
	// TxLat is the per-queue transmit latency histogram: StartXmitQ →
	// the driver's xmit-done credit returning the slot.
	TxLat trace.Hist

	// OnWake, if set, runs when this queue is woken; when unset the
	// interface-level OnWake hook fires instead.
	OnWake func()
}

// Iface is one registered network interface. It implements api.NetKernel —
// it is what RegisterNetDev hands back to the driver. Its TX and RX state is
// split into per-queue contexts, one per hardware queue the bound device
// exposes; single-queue devices simply have one context, queue 0.
type Iface struct {
	Name string
	MAC  MAC
	IP   IP

	stack *Stack
	dev   api.NetDevice
	mqdev api.MultiQueueNetDevice // nil for single-queue devices
	up    bool

	carrier bool
	queues  []IfaceQueue

	// Shadow recovery state: the optional config snapshot (attached by the
	// supervisor), the recovering flag (every queue held in the TX-stopped
	// state until the restarted driver takes over), and the epoch — bumped
	// on each driver death so a proxy bound to the dead incarnation can no
	// longer deliver frames or wakes into this interface.
	Shadow     *shadow.Net
	recovering bool
	epoch      uint64

	// Flight is the per-device flight recorder the supervisor shares with
	// this interface (nil-safe): park/adopt transitions land here, between
	// the supervisor's kill/detect/verdict events.
	Flight *trace.Flight

	// OnWake, if set, runs when the driver wakes a queue with no
	// queue-level hook (backpressure release for the TX benchmark loop).
	OnWake func()
}

var _ api.NetKernel = (*Iface)(nil)
var _ api.RecoverableDevice = (*Iface)(nil)

// ErrNameTaken reports an interface-name collision at registration.
var ErrNameTaken = fmt.Errorf("netstack: interface name already registered")

// Register adds an interface for a driver's netdev. Names must be unique.
// Devices implementing api.MultiQueueNetDevice get one queue context per
// hardware queue; everything else gets exactly one. If an interface is
// awaiting adoption (its supervised driver died) and the registration
// matches it by name or hardware address, the existing interface object is
// adopted instead: sockets and application handles survive the restart.
func (s *Stack) Register(name string, macAddr [6]byte, dev api.NetDevice) (*Iface, error) {
	if ifc := s.adopt(name, macAddr); ifc != nil {
		ifc.dev = dev
		ifc.mqdev = nil
		if mq, ok := dev.(api.MultiQueueNetDevice); ok {
			ifc.mqdev = mq
		}
		return ifc, nil
	}
	if _, dup := s.ifaces[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	ifc := &Iface{Name: name, MAC: MAC(macAddr), stack: s, dev: dev}
	nq := 1
	if mq, ok := dev.(api.MultiQueueNetDevice); ok {
		ifc.mqdev = mq
		if n := mq.TxQueues(); n > 1 {
			nq = n
		}
	}
	ifc.queues = make([]IfaceQueue, nq)
	for q := range ifc.queues {
		ifc.queues[q].ID = q
	}
	s.ifaces[name] = ifc
	return ifc, nil
}

// NumQueues reports the interface's queue-context count.
func (ifc *Iface) NumQueues() int { return len(ifc.queues) }

// Queue returns queue q's context (clamped), for per-queue hooks and stats.
func (ifc *Iface) Queue(q int) *IfaceQueue { return &ifc.queues[ifc.clampQ(q)] }

func (ifc *Iface) clampQ(q int) int {
	if q < 0 || q >= len(ifc.queues) {
		return 0
	}
	return q
}

// Unregister removes an interface (driver removal). Unregistering an
// interface mid-recovery aborts the recovery — no later registration can
// adopt it.
func (s *Stack) Unregister(name string) {
	if ifc, ok := s.ifaces[name]; ok {
		ifc.recovering = false
		ifc.up = false
	}
	delete(s.ifaces, name)
	delete(s.adopting, name)
	delete(s.standbys, name)
}

// BeginRecovery marks name's interface as recovering: its driver process
// died under supervision. TX holds in the stalled state on every queue (the
// transport above sees ErrQueueStopped, not a vanished device), the epoch is
// bumped so the dead incarnation's proxy is cut off, and — when a shadow is
// attached — the configuration snapshot recovery will replay is captured.
func (s *Stack) BeginRecovery(name string) (*Iface, error) {
	ifc, ok := s.ifaces[name]
	if !ok {
		return nil, fmt.Errorf("netstack: no interface %q to recover", name)
	}
	if _, pending := s.adopting[name]; pending && ifc.recovering {
		return ifc, nil // second death with no incarnation bound in between
	}
	ifc.recovering = true
	ifc.epoch++
	for q := range ifc.queues {
		// A device-wide recovery subsumes any surgical one in progress.
		ifc.queues[q].txStopped = true
		ifc.queues[q].recovering = false
	}
	if sh := ifc.Shadow; sh != nil {
		sh.MAC = ifc.MAC
		sh.IP = ifc.IP
		sh.Up = ifc.up
		sh.Carrier = ifc.carrier
		sh.Queues = len(ifc.queues)
		sh.Snapshots++
	}
	s.adopting[name] = ifc
	ifc.Flight.Recordf(trace.FPark, "%s epoch %d: TX stopped on %d queues", name, ifc.epoch, len(ifc.queues))
	return ifc, nil
}

// adopt matches a registration against the adoption table: exact name
// first, then hardware address (the driver read it back from the same
// device's EEPROM, so it identifies the interface across a rename).
func (s *Stack) adopt(name string, macAddr [6]byte) *Iface {
	ifc, ok := s.adopting[name]
	if !ok {
		for n, cand := range s.adopting {
			if cand.MAC == MAC(macAddr) {
				ifc, name, ok = cand, n, true
				break
			}
		}
	}
	if !ok || ifc.MAC != MAC(macAddr) {
		return nil
	}
	delete(s.adopting, name)
	ifc.Flight.Recordf(trace.FAdopt, "%s adopted by restarted driver", name)
	return ifc
}

// RegisterStandby pre-registers a hot-standby driver for the named live
// interface — before any kill. The MAC identity check that protects
// adoption runs now: a standby claiming a different hardware address is
// not a driver for this interface.
func (s *Stack) RegisterStandby(name string, macAddr [6]byte, dev api.NetDevice) error {
	ifc, ok := s.ifaces[name]
	if !ok {
		return fmt.Errorf("netstack: no interface %q to stand by for", name)
	}
	if ifc.MAC != MAC(macAddr) {
		return fmt.Errorf("netstack: standby MAC does not match %s", name)
	}
	if _, dup := s.standbys[name]; dup {
		return fmt.Errorf("netstack: interface %q already has a standby", name)
	}
	s.standbys[name] = dev
	return nil
}

// UnregisterStandby disarms a pre-registered standby.
func (s *Stack) UnregisterStandby(name string) { delete(s.standbys, name) }

// HasStandby reports whether a hot standby is armed for name.
func (s *Stack) HasStandby(name string) bool {
	_, ok := s.standbys[name]
	return ok
}

// PromoteStandby binds the pre-registered standby driver to name's
// recovering interface: the failover half of adoption. The interface must
// be awaiting adoption (its driver died under supervision).
func (s *Stack) PromoteStandby(name string) (*Iface, error) {
	dev, ok := s.standbys[name]
	if !ok {
		return nil, fmt.Errorf("netstack: no standby armed for %q", name)
	}
	ifc, ok := s.adopting[name]
	if !ok {
		return nil, fmt.Errorf("netstack: interface %q is not awaiting adoption", name)
	}
	delete(s.standbys, name)
	delete(s.adopting, name)
	ifc.dev = dev
	ifc.mqdev = nil
	if mq, ok := dev.(api.MultiQueueNetDevice); ok {
		ifc.mqdev = mq
	}
	ifc.Flight.Recordf(trace.FAdopt, "%s adopted by promoted standby", name)
	return ifc, nil
}

// Quarantine bars name's driver while letting the interface survive:
// recovery ends, the epoch is bumped once more, TX stays stopped and the
// interface is left down and driverless for the admin. Unlike Unregister,
// sockets and handles keep resolving the name.
func (s *Stack) Quarantine(name string) {
	ifc, ok := s.ifaces[name]
	if !ok {
		return
	}
	delete(s.adopting, name)
	delete(s.standbys, name)
	ifc.recovering = false
	ifc.up = false
	ifc.carrier = false
	ifc.epoch++
	for q := range ifc.queues {
		ifc.queues[q].txStopped = true
		ifc.queues[q].recovering = false
	}
}

// Iface looks up an interface by name.
func (s *Stack) Iface(name string) (*Iface, error) {
	ifc, ok := s.ifaces[name]
	if !ok {
		return nil, fmt.Errorf("netstack: no interface %q", name)
	}
	return ifc, nil
}

// Up brings the interface up (ifconfig up → ndo_open).
func (ifc *Iface) Up(addr IP) error {
	if ifc.up {
		return nil
	}
	ifc.IP = addr
	if err := ifc.dev.Open(); err != nil {
		return fmt.Errorf("netstack: open %s: %w", ifc.Name, err)
	}
	ifc.up = true
	return nil
}

// Down brings the interface down (→ ndo_stop).
func (ifc *Iface) Down() error {
	if !ifc.up {
		return nil
	}
	ifc.up = false
	return ifc.dev.Stop()
}

// IsUp reports admin state.
func (ifc *Iface) IsUp() bool { return ifc.up }

// Carrier reports the mirrored link state.
func (ifc *Iface) Carrier() bool { return ifc.carrier }

// Epoch reports the interface's driver incarnation epoch; it increments on
// every BeginRecovery. Proxies record the epoch they bound at and reject
// their own late downcalls once it moves on.
func (ifc *Iface) Epoch() uint64 { return ifc.epoch }

// Recovering reports whether the interface is between driver incarnations.
func (ifc *Iface) Recovering() bool { return ifc.recovering }

// QueueEpoch reports queue q's own incarnation epoch; it increments on
// every BeginQueueRecovery.
func (ifc *Iface) QueueEpoch(q int) uint64 { return ifc.queues[ifc.clampQ(q)].Epoch }

// QueueRecovering reports whether queue q alone is parked by a surgical
// recovery.
func (ifc *Iface) QueueRecovering(q int) bool { return ifc.queues[ifc.clampQ(q)].recovering }

// BeginQueueRecovery parks exactly one queue pair: the supervisor detected
// DMA faults attributable to queue q and revoked that queue's sub-domain,
// while the driver process — and every sibling queue — stays up. TX holds
// stopped on this queue, its RX deliveries are dropped (there is no packet
// replay: network loss is the transport's problem), and the queue's own
// epoch is bumped. Idempotent; a device-wide recovery subsumes it.
func (ifc *Iface) BeginQueueRecovery(q int) {
	if ifc.recovering {
		return
	}
	qc := &ifc.queues[ifc.clampQ(q)]
	if qc.recovering {
		return
	}
	qc.recovering = true
	qc.txStopped = true
	qc.Epoch++
	ifc.Flight.Recordf(trace.FPark, "%s q%d epoch %d: TX stopped, RX dropped",
		ifc.Name, qc.ID, qc.Epoch)
}

// CompleteQueueRecovery releases a surgically parked queue after its DMA
// sub-domain is re-armed: TX wakes on this one queue, its shadow TX log
// replays through the live driver (frames the quarantined queue incarnation
// swallowed), and RX flows again. Siblings never noticed. It returns the
// replayed frame count, and an error while a device-wide recovery is in
// progress.
func (ifc *Iface) CompleteQueueRecovery(q int) (int, error) {
	if ifc.recovering {
		return 0, fmt.Errorf("netstack: %s is in device-wide recovery", ifc.Name)
	}
	qc := &ifc.queues[ifc.clampQ(q)]
	if !qc.recovering {
		return 0, nil
	}
	qc.recovering = false
	ifc.Flight.Recordf(trace.FReplay, "%s q%d epoch %d: queue re-armed, TX released",
		ifc.Name, qc.ID, qc.Epoch)
	ifc.wakeQueue(qc.ID)
	return ifc.replayTx(qc.ID), nil
}

// CompleteRecovery finishes a shadow recovery after the restarted driver has
// adopted the interface: the recorded bring-up is replayed (the driver's
// Open re-arms its RX rings and, under RSS, reprograms the redirection
// table over the same queue count), every queue's TX is released, and the
// shadow TX log — frames the dead incarnation swallowed without an
// xmit-done credit — is re-submitted through the new driver, so the kill is
// invisible at the packet level. The IP address and admin state are
// restored from the shadow snapshot when one is attached, else from the
// surviving interface object itself. It returns the replayed frame count;
// on an Open failure the interface stays recovering, so a second restart
// can retry.
func (ifc *Iface) CompleteRecovery() (int, error) {
	if !ifc.recovering {
		return 0, nil
	}
	up := ifc.up
	if sh := ifc.Shadow; sh != nil {
		up = sh.Up
		ifc.IP = IP(sh.IP)
	}
	if up {
		if err := ifc.dev.Open(); err != nil {
			return 0, fmt.Errorf("netstack: recovery open %s: %w", ifc.Name, err)
		}
		ifc.up = true
	}
	ifc.recovering = false
	ifc.Flight.Recordf(trace.FReplay, "%s bring-up replayed, TX released", ifc.Name)
	replayed := 0
	for q := range ifc.queues {
		ifc.wakeQueue(q)
	}
	for q := range ifc.queues {
		replayed += ifc.replayTx(q)
	}
	return replayed, nil
}

// replayTx re-submits queue q's unconfirmed shadow TX log through the live
// driver, in original submission order. Re-submission runs the normal xmit
// path, so each replayed frame re-enters the log — it is in flight in the
// new incarnation now, and its xmit-done credit will confirm it. A frame
// the new driver refuses (ring already full) is dropped: at that point the
// transport's retransmit owns it.
func (ifc *Iface) replayTx(q int) int {
	sh := ifc.Shadow
	if sh == nil {
		return 0
	}
	replayed := 0
	// Replay on the queue the frame was logged under, not the flow hash:
	// frames pinned by xmitQ must come back on their pinned queue.
	for _, frame := range sh.TakePendingTx(q) {
		if err := ifc.stack.xmitQ(ifc, frame, q); err == nil {
			replayed++
		}
	}
	sh.TxReplayed += uint64(replayed)
	if replayed > 0 {
		ifc.Flight.Recordf(trace.FReplay, "%s q%d: %d logged TX frames replayed",
			ifc.Name, q, replayed)
	}
	return replayed
}

// TxConfirm reports the driver's xmit-done credit for queue q's oldest
// in-flight frame (TX rings are reclaimed in order, so credits are FIFO per
// queue): the frame left the device, and the shadow log must not replay it.
// Proxies call it from their validated credit path; without an attached
// shadow it is a no-op.
func (ifc *Iface) TxConfirm(q int) {
	if sh := ifc.Shadow; sh != nil {
		sh.ConfirmXmit(ifc.clampQ(q))
	}
}

// Ioctl forwards a device-private ioctl to the driver (a synchronous
// operation: under SUD this is the blocking-upcall path).
func (ifc *Iface) Ioctl(cmd uint32, arg []byte) ([]byte, error) {
	return ifc.dev.DoIoctl(cmd, arg)
}

// --- api.NetKernel (driver → kernel) ---------------------------------------

// NetifRx implements api.NetKernel: the trusted-path packet input, tagged
// with the RX queue the frame arrived on. The in-kernel driver hands a frame
// it fully owns; the stack verifies transport checksums itself, and delivery
// is accounted to the queue's context.
func (ifc *Iface) NetifRx(frame []byte, q int) {
	qc := &ifc.queues[ifc.clampQ(q)]
	if qc.recovering {
		// A surgically quarantined queue delivers nothing: frames from
		// its dead incarnation are dropped, not trusted (the transport
		// retransmits).
		qc.ParkedRxDrops++
		return
	}
	qc.RxFrames++
	ifc.stack.deliver(ifc, frame, false)
}

// NetifRxVerified is the proxy-driver input path, tagged with its RX queue:
// the frame was already guard-copied out of shared memory with its checksum
// verified in the same pass (§3.1.2), so the stack must not checksum it
// again.
func (ifc *Iface) NetifRxVerified(frame []byte, q int) {
	qc := &ifc.queues[ifc.clampQ(q)]
	if qc.recovering {
		qc.ParkedRxDrops++
		return
	}
	qc.RxFrames++
	ifc.stack.deliver(ifc, frame, true)
}

// CarrierOn implements api.NetKernel.
func (ifc *Iface) CarrierOn() { ifc.carrier = true }

// CarrierOff implements api.NetKernel.
func (ifc *Iface) CarrierOff() { ifc.carrier = false }

// WakeQueue implements api.NetKernel: wake one stopped queue, leaving
// siblings' stop state untouched (a single-queue driver's "my ring has
// space again" names queue 0).
func (ifc *Iface) WakeQueue(q int) { ifc.wakeQueue(ifc.clampQ(q)) }

func (ifc *Iface) wakeQueue(q int) {
	if ifc.recovering || ifc.queues[q].recovering {
		// Wakes between driver incarnations must not release TX into a
		// driver that no longer exists; CompleteRecovery wakes every
		// queue once the restarted driver is in place. A surgically
		// quarantined queue stays parked until its own re-arm.
		return
	}
	ifc.queues[q].txStopped = false
	if h := ifc.queues[q].OnWake; h != nil {
		h()
		return
	}
	if ifc.OnWake != nil {
		ifc.OnWake()
	}
}

// --- Receive path -----------------------------------------------------------

func (s *Stack) deliver(ifc *Iface, frame []byte, verified bool) {
	s.RxFrames++
	s.Acct.Charge(CostRxPath)

	if s.Firewall != nil && !s.Firewall(frame) {
		s.FirewallDrops++
		return
	}

	eh, ipPkt, err := ParseEth(frame)
	if err != nil || eh.EtherType != EtherTypeIPv4 {
		s.RxDrops++
		return
	}
	ih, l4, err := ParseIPv4(ipPkt)
	if err != nil {
		s.RxDrops++
		return
	}
	// Transport checksum: charged per byte unless the proxy already
	// fused it with its guard copy.
	if !verified {
		s.Acct.Charge(sim.Checksum(len(l4)))
	}
	switch ih.Proto {
	case ProtoUDP:
		uh, payload, err := ParseUDP(ih.Src, ih.Dst, l4, true)
		if err != nil {
			s.RxDrops++
			return
		}
		sock, ok := s.udp[uh.DstPort]
		if !ok {
			s.RxDrops++
			return
		}
		s.Acct.Charge(CostSockDeliver)
		sock.deliver(payload, ih.Src, uh.SrcPort)
	case ProtoTCP:
		th, payload, err := ParseTCP(ih.Src, ih.Dst, l4, true)
		if err != nil {
			s.RxDrops++
			return
		}
		r, ok := s.tcp[th.DstPort]
		if !ok {
			s.RxDrops++
			return
		}
		r.segment(ifc, eh, ih, th, payload)
	default:
		s.RxDrops++
	}
}

// --- Transmit path ----------------------------------------------------------

// ErrQueueStopped is returned when the driver has stopped the TX queue.
var ErrQueueStopped = fmt.Errorf("netstack: transmit queue stopped")

// TxQueueForPorts is the flow-steering hash: the TX queue a flow with the
// given transport ports lands on among nq queues. It is the same hash the
// e1000 device model's RSS steering uses, so a flow's transmit queue and
// receive ring line up end to end.
func TxQueueForPorts(sport, dport uint16, nq int) int {
	if nq <= 1 {
		return 0
	}
	return int((uint32(sport)*31 + uint32(dport)) % uint32(nq))
}

// TxQueueForFrame steers a built frame to a TX queue by hashing its
// transport ports; non-IPv4 and short frames use queue 0. Keeping each flow
// on one queue preserves per-flow ordering.
func TxQueueForFrame(frame []byte, nq int) int {
	if nq <= 1 {
		return 0
	}
	if len(frame) < EthHeaderLen+20 || frame[12] != 0x08 || frame[13] != 0x00 {
		return 0
	}
	ihl := int(frame[EthHeaderLen]&0x0F) * 4
	proto := frame[EthHeaderLen+9]
	l4 := EthHeaderLen + ihl
	if (proto != 6 && proto != 17) || len(frame) < l4+4 {
		return 0
	}
	sport := uint16(frame[l4])<<8 | uint16(frame[l4+1])
	dport := uint16(frame[l4+2])<<8 | uint16(frame[l4+3])
	return TxQueueForPorts(sport, dport, nq)
}

// xmit pushes a fully built frame to the driver, charging TX path cost. The
// frame is steered to a queue context by flow hash; backpressure from the
// driver stops that queue only.
func (s *Stack) xmit(ifc *Iface, frame []byte) error {
	return s.xmitQ(ifc, frame, TxQueueForFrame(frame, len(ifc.queues)))
}

// xmitQ is xmit with the TX queue named by the caller instead of derived from
// the flow hash — the mechanism under both default steering and the tenant
// plane's explicit tenant↔queue pinning.
func (s *Stack) xmitQ(ifc *Iface, frame []byte, q int) error {
	if !ifc.up {
		return fmt.Errorf("netstack: %s is down", ifc.Name)
	}
	q = ifc.clampQ(q)
	qc := &ifc.queues[q]
	if qc.txStopped {
		s.TxErrors++
		return ErrQueueStopped
	}
	s.Acct.Charge(CostTxPath)
	// Shadow the frame before the driver takes ownership of the slice: a
	// supervised driver may die holding it, and the log entry is what the
	// recovery replays. Committed only if the driver accepts the frame.
	var logged []byte
	if ifc.Shadow != nil {
		logged = append([]byte(nil), frame...)
	}
	var err error
	if ifc.mqdev != nil {
		err = ifc.mqdev.StartXmitQ(frame, q)
	} else {
		err = ifc.dev.StartXmit(frame)
	}
	if err != nil {
		// Driver signals ring-full backpressure by error; this queue
		// stays stopped until WakeQueue — siblings keep transmitting.
		qc.txStopped = true
		s.TxErrors++
		return fmt.Errorf("%w: %v", ErrQueueStopped, err)
	}
	if ifc.Shadow != nil {
		ifc.Shadow.RecordXmit(q, logged)
	}
	qc.TxFrames++
	s.TxFrames++
	return nil
}

// UDPSendTo builds and transmits a UDP datagram. dstMAC stands in for ARP
// resolution (the benchmark LAN has static neighbours).
func (s *Stack) UDPSendTo(ifc *Iface, dstMAC MAC, dstIP IP, sport, dport uint16, payload []byte) error {
	// Header construction + payload checksum+copy into the skb.
	s.Acct.Charge(sim.ChecksumCopy(len(payload)))
	frame := BuildUDPFrame(ifc.MAC, dstMAC, ifc.IP, dstIP, sport, dport, payload)
	return s.xmit(ifc, frame)
}

// UDPSendToQ is UDPSendTo with the TX queue pinned by the caller rather than
// flow-hashed — the netstack half of the unified queue-aware kernel API,
// mirroring blockdev's ReadAtQ/WriteAtQ. The tenant plane uses it to keep a
// tenant's replies on the tenant's own driver queue even when the reply
// flow's hash would land elsewhere, so per-queue confinement stays a tenant
// isolation boundary in both directions.
func (s *Stack) UDPSendToQ(ifc *Iface, dstMAC MAC, dstIP IP, sport, dport uint16, payload []byte, q int) error {
	s.Acct.Charge(sim.ChecksumCopy(len(payload)))
	frame := BuildUDPFrame(ifc.MAC, dstMAC, ifc.IP, dstIP, sport, dport, payload)
	return s.xmitQ(ifc, frame, q)
}
