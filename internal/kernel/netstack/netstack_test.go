package netstack

import (
	"bytes"
	"testing"
	"testing/quick"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

var (
	macA = MAC{2, 0, 0, 0, 0, 1}
	macB = MAC{2, 0, 0, 0, 0, 2}
	ipA  = IP{10, 0, 0, 1}
	ipB  = IP{10, 0, 0, 2}
)

// loopDev is a fake netdev that records transmitted frames.
type loopDev struct {
	opened, stopped bool
	tx              [][]byte
	failXmit        bool
}

func (d *loopDev) Open() error { d.opened = true; return nil }
func (d *loopDev) Stop() error { d.stopped = true; return nil }
func (d *loopDev) StartXmit(f []byte) error {
	if d.failXmit {
		return ErrQueueStopped
	}
	d.tx = append(d.tx, f)
	return nil
}
func (d *loopDev) DoIoctl(cmd uint32, arg []byte) ([]byte, error) {
	return []byte{0x42}, nil
}

func newStack(t *testing.T) (*Stack, *Iface, *loopDev) {
	t.Helper()
	loop := sim.NewLoop()
	stats := sim.NewCPUStats(2)
	s := New(loop, stats.Account("kernel"))
	dev := &loopDev{}
	ifc, err := s.Register("eth0", macA, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(ipA); err != nil {
		t.Fatal(err)
	}
	return s, ifc, dev
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic example: checksum of this sequence is 0xDDF2 complemented.
	b := []byte{0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7}
	if got := Checksum(b); got != ^uint16(0xDDF2) {
		t.Fatalf("checksum = %#x, want %#x", got, ^uint16(0xDDF2))
	}
}

func TestEthRoundTrip(t *testing.T) {
	h := EthHeader{Dst: macB, Src: macA, EtherType: EtherTypeIPv4}
	frame := h.Marshal(nil)
	frame = append(frame, 1, 2, 3)
	got, payload, err := ParseEth(frame)
	if err != nil || got != h || len(payload) != 3 {
		t.Fatalf("parse = %+v, %v", got, err)
	}
	if _, _, err := ParseEth(frame[:10]); err == nil {
		t.Fatal("short frame parsed")
	}
}

func TestIPv4RoundTripAndCorruption(t *testing.T) {
	h := IPv4Header{Proto: ProtoUDP, TTL: 64, Src: ipA, Dst: ipB}
	pkt := h.Marshal(nil, 4)
	pkt = append(pkt, 0xDE, 0xAD, 0xBE, 0xEF)
	got, payload, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != ipA || got.Dst != ipB || got.Proto != ProtoUDP || len(payload) != 4 {
		t.Fatalf("parsed %+v payload %d", got, len(payload))
	}
	pkt[8] ^= 0xFF // corrupt TTL
	if _, _, err := ParseIPv4(pkt); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestUDPFrameRoundTrip(t *testing.T) {
	payload := []byte("netperf request")
	frame := BuildUDPFrame(macA, macB, ipA, ipB, 5001, 7, payload)
	_, ipPkt, err := ParseEth(frame)
	if err != nil {
		t.Fatal(err)
	}
	ih, l4, err := ParseIPv4(ipPkt)
	if err != nil {
		t.Fatal(err)
	}
	uh, got, err := ParseUDP(ih.Src, ih.Dst, l4, true)
	if err != nil {
		t.Fatal(err)
	}
	if uh.SrcPort != 5001 || uh.DstPort != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("uh=%+v payload=%q", uh, got)
	}
	// Flip a payload bit: checksum must catch it.
	frame[len(frame)-1] ^= 1
	_, ipPkt, _ = ParseEth(frame)
	ih, l4, _ = ParseIPv4(ipPkt)
	if _, _, err := ParseUDP(ih.Src, ih.Dst, l4, true); err == nil {
		t.Fatal("corrupted UDP accepted")
	}
}

func TestTCPFrameRoundTrip(t *testing.T) {
	h := TCPHeader{SrcPort: 33000, DstPort: 5201, Seq: 1000, Ack: 2000, Flags: TCPAck | TCPPsh, Window: 4096}
	payload := bytes.Repeat([]byte{7}, 100)
	frame := BuildTCPFrame(macA, macB, ipA, ipB, h, payload)
	_, ipPkt, _ := ParseEth(frame)
	ih, l4, err := ParseIPv4(ipPkt)
	if err != nil {
		t.Fatal(err)
	}
	got, data, err := ParseTCP(ih.Src, ih.Dst, l4, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(data, payload) {
		t.Fatalf("parsed %+v", got)
	}
}

func TestUDPSocketDelivery(t *testing.T) {
	s, ifc, _ := newStack(t)
	var got []byte
	var from IP
	if _, err := s.UDPBind(9000, func(p []byte, src IP, sport uint16) {
		got = append([]byte(nil), p...)
		from = src
	}); err != nil {
		t.Fatal(err)
	}
	frame := BuildUDPFrame(macB, macA, ipB, ipA, 777, 9000, []byte("hi"))
	ifc.NetifRx(frame, 0)
	if string(got) != "hi" || from != ipB {
		t.Fatalf("got %q from %v", got, from)
	}
	if s.RxFrames != 1 || s.RxDrops != 0 {
		t.Fatalf("frames=%d drops=%d", s.RxFrames, s.RxDrops)
	}
}

func TestUDPUnboundPortDrops(t *testing.T) {
	s, ifc, _ := newStack(t)
	ifc.NetifRx(BuildUDPFrame(macB, macA, ipB, ipA, 777, 9999, []byte("x")), 0)
	if s.RxDrops != 1 {
		t.Fatal("datagram to unbound port not dropped")
	}
}

func TestUDPBindConflict(t *testing.T) {
	s, _, _ := newStack(t)
	if _, err := s.UDPBind(53, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UDPBind(53, nil); err == nil {
		t.Fatal("double bind succeeded")
	}
	s.UDPClose(53)
	if _, err := s.UDPBind(53, nil); err != nil {
		t.Fatal("rebind after close failed:", err)
	}
}

func TestUDPSend(t *testing.T) {
	s, ifc, dev := newStack(t)
	if err := s.UDPSendTo(ifc, macB, ipB, 5001, 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if len(dev.tx) != 1 {
		t.Fatalf("driver got %d frames", len(dev.tx))
	}
	// The transmitted frame parses back.
	_, ipPkt, _ := ParseEth(dev.tx[0])
	ih, l4, err := ParseIPv4(ipPkt)
	if err != nil {
		t.Fatal(err)
	}
	if _, p, err := ParseUDP(ih.Src, ih.Dst, l4, true); err != nil || string(p) != "ping" {
		t.Fatalf("xmitted datagram bad: %v %q", err, p)
	}
	if s.Acct.Busy() == 0 {
		t.Fatal("send charged no CPU")
	}
}

func TestXmitBackpressure(t *testing.T) {
	s, ifc, dev := newStack(t)
	dev.failXmit = true
	if err := s.UDPSendTo(ifc, macB, ipB, 1, 2, []byte("x")); err == nil {
		t.Fatal("xmit to full ring succeeded")
	}
	// Queue is now stopped; even after the driver recovers, sends fail
	// until WakeQueue.
	dev.failXmit = false
	if err := s.UDPSendTo(ifc, macB, ipB, 1, 2, []byte("x")); err == nil {
		t.Fatal("send while queue stopped succeeded")
	}
	var woken bool
	ifc.OnWake = func() { woken = true }
	ifc.WakeQueue(0)
	if !woken {
		t.Fatal("OnWake not invoked")
	}
	if err := s.UDPSendTo(ifc, macB, ipB, 1, 2, []byte("x")); err != nil {
		t.Fatal("send after wake failed:", err)
	}
}

// mqDev is a fake multi-queue netdev: per-queue transmit logs and per-queue
// failure injection.
type mqDev struct {
	loopDev
	nq    int
	txq   map[int][][]byte
	failQ map[int]bool
}

func (d *mqDev) TxQueues() int { return d.nq }
func (d *mqDev) StartXmitQ(f []byte, q int) error {
	if d.failQ[q] {
		return ErrQueueStopped
	}
	if d.txq == nil {
		d.txq = map[int][][]byte{}
	}
	d.txq[q] = append(d.txq[q], f)
	return nil
}

// TestPerQueueTxStopIsolation is the regression test for the multi-queue
// netstack split: backpressure on queue 0 must not stop queue 1 transmits,
// and waking queue 0 must not disturb queue 1 — the old single stop/wake
// flag failed both.
func TestPerQueueTxStopIsolation(t *testing.T) {
	loop := sim.NewLoop()
	s := New(loop, sim.NewCPUStats(2).Account("kernel"))
	dev := &mqDev{nq: 2, failQ: map[int]bool{}}
	ifc, err := s.Register("eth0", macA, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(ipA); err != nil {
		t.Fatal(err)
	}
	if ifc.NumQueues() != 2 {
		t.Fatalf("queue contexts = %d, want 2", ifc.NumQueues())
	}
	// Pick source ports that hash to queues 0 and 1.
	var sport0, sport1 uint16
	for p := uint16(40000); p < 40100; p++ {
		if TxQueueForPorts(p, 7, 2) == 0 && sport0 == 0 {
			sport0 = p
		}
		if TxQueueForPorts(p, 7, 2) == 1 && sport1 == 0 {
			sport1 = p
		}
	}
	// Queue 0's ring fills: its flow backpressures and the queue stops.
	dev.failQ[0] = true
	if err := s.UDPSendTo(ifc, macB, ipB, sport0, 7, []byte("q0")); err == nil {
		t.Fatal("queue 0 xmit succeeded despite full ring")
	}
	if !ifc.Queue(0).txStopped {
		t.Fatal("queue 0 not stopped")
	}
	// Queue 1 keeps transmitting.
	if err := s.UDPSendTo(ifc, macB, ipB, sport1, 7, []byte("q1")); err != nil {
		t.Fatalf("queue 1 stalled by queue 0 backpressure: %v", err)
	}
	if len(dev.txq[1]) != 1 {
		t.Fatalf("queue 1 carried %d frames", len(dev.txq[1]))
	}
	// Queue 0 stays stopped until its own wake, even with the ring fixed.
	dev.failQ[0] = false
	if err := s.UDPSendTo(ifc, macB, ipB, sport0, 7, []byte("q0")); err == nil {
		t.Fatal("stopped queue accepted a frame before wake")
	}
	var wokeQ0, wokeIfc int
	ifc.Queue(0).OnWake = func() { wokeQ0++ }
	ifc.OnWake = func() { wokeIfc++ }
	ifc.WakeQueue(1) // waking a sibling must not release queue 0
	if err := s.UDPSendTo(ifc, macB, ipB, sport0, 7, []byte("q0")); err == nil {
		t.Fatal("sibling wake released queue 0")
	}
	ifc.WakeQueue(0)
	if wokeQ0 != 1 || wokeIfc != 1 {
		t.Fatalf("wake hooks: q0=%d ifc=%d (sibling wake should hit the iface hook)", wokeQ0, wokeIfc)
	}
	if err := s.UDPSendTo(ifc, macB, ipB, sport0, 7, []byte("q0")); err != nil {
		t.Fatalf("queue 0 send after wake: %v", err)
	}
	if ifc.Queue(0).TxFrames != 1 || ifc.Queue(1).TxFrames != 1 {
		t.Fatalf("per-queue tx counters: q0=%d q1=%d", ifc.Queue(0).TxFrames, ifc.Queue(1).TxFrames)
	}
	// Per-queue RX contexts count tagged deliveries.
	ifc.NetifRx(BuildUDPFrame(macB, macA, ipB, ipA, 1, 9999, []byte("x")), 1)
	if ifc.Queue(1).RxFrames != 1 {
		t.Fatal("tagged RX not counted on its queue context")
	}
}

func TestFirewallDropsAndTOCTOUSurface(t *testing.T) {
	s, ifc, _ := newStack(t)
	var inspected int
	s.Firewall = func(frame []byte) bool {
		inspected++
		// Block UDP port 6666.
		_, ipPkt, _ := ParseEth(frame)
		ih, l4, err := ParseIPv4(ipPkt)
		if err != nil {
			return false
		}
		if ih.Proto == ProtoUDP {
			uh, _, err := ParseUDP(ih.Src, ih.Dst, l4, false)
			if err != nil || uh.DstPort == 6666 {
				return false
			}
		}
		return true
	}
	var delivered int
	if _, err := s.UDPBind(6666, func([]byte, IP, uint16) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UDPBind(7777, func([]byte, IP, uint16) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	ifc.NetifRx(BuildUDPFrame(macB, macA, ipB, ipA, 1, 6666, []byte("evil")), 0)
	ifc.NetifRx(BuildUDPFrame(macB, macA, ipB, ipA, 1, 7777, []byte("ok")), 0)
	if delivered != 1 || s.FirewallDrops != 1 || inspected != 2 {
		t.Fatalf("delivered=%d drops=%d inspected=%d", delivered, s.FirewallDrops, inspected)
	}
}

func TestTCPReceiverStream(t *testing.T) {
	s, ifc, dev := newStack(t)
	var total int
	if _, err := s.TCPListen(5201, func(n int) { total += n }); err != nil {
		t.Fatal(err)
	}
	// SYN.
	syn := BuildTCPFrame(macB, macA, ipB, ipA, TCPHeader{SrcPort: 40000, DstPort: 5201, Seq: 99, Flags: TCPSyn}, nil)
	ifc.NetifRx(syn, 0)
	if len(dev.tx) != 1 {
		t.Fatal("no SYN ack")
	}
	// Two in-order segments: delayed ACK fires on the second.
	seq := uint32(100)
	seg1 := BuildTCPFrame(macB, macA, ipB, ipA, TCPHeader{SrcPort: 40000, DstPort: 5201, Seq: seq, Flags: TCPAck}, bytes.Repeat([]byte{1}, 1000))
	ifc.NetifRx(seg1, 0)
	if len(dev.tx) != 1 {
		t.Fatal("premature ACK before delayed-ack threshold")
	}
	seg2 := BuildTCPFrame(macB, macA, ipB, ipA, TCPHeader{SrcPort: 40000, DstPort: 5201, Seq: seq + 1000, Flags: TCPAck}, bytes.Repeat([]byte{2}, 1000))
	ifc.NetifRx(seg2, 0)
	if len(dev.tx) != 2 {
		t.Fatalf("expected delayed ACK after 2 segments, tx=%d", len(dev.tx))
	}
	if total != 2000 {
		t.Fatalf("app saw %d bytes", total)
	}
	// The ACK carries the cumulative sequence.
	_, ipPkt, _ := ParseEth(dev.tx[1])
	ih, l4, _ := ParseIPv4(ipPkt)
	th, _, err := ParseTCP(ih.Src, ih.Dst, l4, true)
	if err != nil || th.Ack != seq+2000 {
		t.Fatalf("ack=%d err=%v", th.Ack, err)
	}
}

func TestTCPOutOfOrderReAcks(t *testing.T) {
	s, ifc, dev := newStack(t)
	r, err := s.TCPListen(5201, nil)
	if err != nil {
		t.Fatal(err)
	}
	ifc.NetifRx(BuildTCPFrame(macB, macA, ipB, ipA, TCPHeader{SrcPort: 1, DstPort: 5201, Seq: 0, Flags: TCPSyn}, nil), 0)
	// Skip ahead: out of order.
	ifc.NetifRx(BuildTCPFrame(macB, macA, ipB, ipA, TCPHeader{SrcPort: 1, DstPort: 5201, Seq: 5000, Flags: TCPAck}, []byte{1}), 0)
	if r.OutOfOrder != 1 {
		t.Fatal("out-of-order segment not detected")
	}
	// Dup-ack was sent (SYN-ACK + dup-ack = 2).
	if len(dev.tx) != 2 {
		t.Fatalf("tx=%d", len(dev.tx))
	}
}

func TestIfaceLifecycle(t *testing.T) {
	s, ifc, dev := newStack(t)
	if !ifc.IsUp() || !dev.opened {
		t.Fatal("Up did not open device")
	}
	ifc.CarrierOn()
	if !ifc.Carrier() {
		t.Fatal("carrier")
	}
	if err := ifc.Down(); err != nil || !dev.stopped {
		t.Fatal("Down did not stop device")
	}
	if err := s.UDPSendTo(ifc, macB, ipB, 1, 2, []byte("x")); err == nil {
		t.Fatal("send on downed interface succeeded")
	}
	if _, err := s.Register("eth0", macA, dev); err == nil {
		t.Fatal("duplicate interface name accepted")
	}
	if _, err := s.Iface("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Iface("wlan9"); err == nil {
		t.Fatal("missing iface lookup succeeded")
	}
	out, err := ifc.Ioctl(api.IoctlGetMIIStatus, nil)
	if err != nil || out[0] != 0x42 {
		t.Fatal("ioctl passthrough failed")
	}
}

// Property: UDP frames round-trip for arbitrary payloads and ports.
func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sport, dport uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame := BuildUDPFrame(macA, macB, ipA, ipB, sport, dport, payload)
		_, ipPkt, err := ParseEth(frame)
		if err != nil {
			return false
		}
		ih, l4, err := ParseIPv4(ipPkt)
		if err != nil {
			return false
		}
		uh, got, err := ParseUDP(ih.Src, ih.Dst, l4, true)
		return err == nil && uh.SrcPort == sport && uh.DstPort == dport && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the Internet checksum of data with its checksum appended is 0.
func TestChecksumSelfVerifyProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		ck := Checksum(data)
		whole := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		return Checksum(whole) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
