// Package netstack is the mini network stack of the simulated kernel: real
// Ethernet/IPv4/UDP/TCP header marshalling with Internet checksums, network
// interfaces bound to driver netdev ops, UDP sockets and a TCP-lite receive
// path sufficient to drive the paper's netperf benchmarks, and the firewall
// hook the §3.1.2 TOCTOU discussion needs.
package netstack

import (
	"encoding/binary"
	"fmt"
)

// MAC is an Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP is an IPv4 address.
type IP [4]byte

func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Protocol numbers and ethertypes.
const (
	EtherTypeIPv4 = 0x0800
	ProtoUDP      = 17
	ProtoTCP      = 6

	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
)

// TCP flags.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPAck = 1 << 4
	TCPPsh = 1 << 3
)

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// EthHeader is a MAC header.
type EthHeader struct {
	Dst, Src  MAC
	EtherType uint16
}

// Marshal appends the header to dst.
func (h *EthHeader) Marshal(dst []byte) []byte {
	dst = append(dst, h.Dst[:]...)
	dst = append(dst, h.Src[:]...)
	return binary.BigEndian.AppendUint16(dst, h.EtherType)
}

// ParseEth decodes the MAC header and returns the payload.
func ParseEth(frame []byte) (EthHeader, []byte, error) {
	if len(frame) < EthHeaderLen {
		return EthHeader{}, nil, fmt.Errorf("netstack: short ethernet frame (%d bytes)", len(frame))
	}
	var h EthHeader
	copy(h.Dst[:], frame[0:6])
	copy(h.Src[:], frame[6:12])
	h.EtherType = binary.BigEndian.Uint16(frame[12:14])
	return h, frame[14:], nil
}

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	Proto    uint8
	TTL      uint8
	Src, Dst IP
	// TotalLen is filled in by Marshal from the payload length.
	TotalLen uint16
	ID       uint16
}

// Marshal appends a checksummed header for a payload of payloadLen bytes.
func (h *IPv4Header) Marshal(dst []byte, payloadLen int) []byte {
	start := len(dst)
	total := uint16(IPv4HeaderLen + payloadLen)
	dst = append(dst,
		0x45, 0, // version/IHL, TOS
		byte(total>>8), byte(total),
		byte(h.ID>>8), byte(h.ID),
		0x40, 0, // don't fragment
		h.TTL, h.Proto,
		0, 0, // checksum placeholder
	)
	dst = append(dst, h.Src[:]...)
	dst = append(dst, h.Dst[:]...)
	ck := Checksum(dst[start:])
	dst[start+10] = byte(ck >> 8)
	dst[start+11] = byte(ck)
	return dst
}

// ParseIPv4 decodes and verifies an IPv4 header, returning the payload.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("netstack: short IPv4 packet")
	}
	if b[0] != 0x45 {
		return IPv4Header{}, nil, fmt.Errorf("netstack: unsupported IPv4 header %#x", b[0])
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return IPv4Header{}, nil, fmt.Errorf("netstack: bad IPv4 header checksum")
	}
	var h IPv4Header
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) > len(b) || int(h.TotalLen) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("netstack: IPv4 length %d out of range", h.TotalLen)
	}
	return h, b[IPv4HeaderLen:h.TotalLen], nil
}

// pseudoSum computes the TCP/UDP pseudo-header partial sum.
func pseudoSum(src, dst IP, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// l4Checksum computes a transport checksum with pseudo-header.
func l4Checksum(src, dst IP, proto uint8, seg []byte) uint16 {
	sum := pseudoSum(src, dst, proto, len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(seg[i])<<8 | uint32(seg[i+1])
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	ck := ^uint16(sum)
	if ck == 0 {
		ck = 0xFFFF
	}
	return ck
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// MarshalUDP appends header+payload with a valid checksum.
func MarshalUDP(dst []byte, src, dstIP IP, h UDPHeader, payload []byte) []byte {
	start := len(dst)
	l := UDPHeaderLen + len(payload)
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(l))
	dst = append(dst, 0, 0) // checksum placeholder
	dst = append(dst, payload...)
	ck := l4Checksum(src, dstIP, ProtoUDP, dst[start:])
	dst[start+6] = byte(ck >> 8)
	dst[start+7] = byte(ck)
	return dst
}

// ParseUDP decodes and verifies a UDP datagram.
func ParseUDP(src, dstIP IP, seg []byte, verify bool) (UDPHeader, []byte, error) {
	if len(seg) < UDPHeaderLen {
		return UDPHeader{}, nil, fmt.Errorf("netstack: short UDP datagram")
	}
	l := int(binary.BigEndian.Uint16(seg[4:6]))
	if l < UDPHeaderLen || l > len(seg) {
		return UDPHeader{}, nil, fmt.Errorf("netstack: UDP length %d out of range", l)
	}
	if verify && l4Checksum(src, dstIP, ProtoUDP, zeroCksum(seg[:l], 6)) != binary.BigEndian.Uint16(seg[6:8]) {
		return UDPHeader{}, nil, fmt.Errorf("netstack: bad UDP checksum")
	}
	return UDPHeader{
		SrcPort: binary.BigEndian.Uint16(seg[0:2]),
		DstPort: binary.BigEndian.Uint16(seg[2:4]),
	}, seg[UDPHeaderLen:l], nil
}

// zeroCksum returns a copy of seg with the 2-byte checksum field at off
// zeroed (for verification).
func zeroCksum(seg []byte, off int) []byte {
	c := make([]byte, len(seg))
	copy(c, seg)
	c[off] = 0
	c[off+1] = 0
	return c
}

// TCPHeader is a TCP header without options.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// MarshalTCP appends header+payload with a valid checksum.
func MarshalTCP(dst []byte, src, dstIP IP, h TCPHeader, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, h.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, h.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, h.Seq)
	dst = binary.BigEndian.AppendUint32(dst, h.Ack)
	dst = append(dst, 5<<4, h.Flags)
	dst = binary.BigEndian.AppendUint16(dst, h.Window)
	dst = append(dst, 0, 0, 0, 0) // checksum + urgent
	dst = append(dst, payload...)
	ck := l4Checksum(src, dstIP, ProtoTCP, dst[start:])
	dst[start+16] = byte(ck >> 8)
	dst[start+17] = byte(ck)
	return dst
}

// ParseTCP decodes and (optionally) verifies a TCP segment.
func ParseTCP(src, dstIP IP, seg []byte, verify bool) (TCPHeader, []byte, error) {
	if len(seg) < TCPHeaderLen {
		return TCPHeader{}, nil, fmt.Errorf("netstack: short TCP segment")
	}
	dataOff := int(seg[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(seg) {
		return TCPHeader{}, nil, fmt.Errorf("netstack: TCP data offset %d out of range", dataOff)
	}
	if verify && l4Checksum(src, dstIP, ProtoTCP, zeroCksum(seg, 16)) != binary.BigEndian.Uint16(seg[16:18]) {
		return TCPHeader{}, nil, fmt.Errorf("netstack: bad TCP checksum")
	}
	return TCPHeader{
		SrcPort: binary.BigEndian.Uint16(seg[0:2]),
		DstPort: binary.BigEndian.Uint16(seg[2:4]),
		Seq:     binary.BigEndian.Uint32(seg[4:8]),
		Ack:     binary.BigEndian.Uint32(seg[8:12]),
		Flags:   seg[13],
		Window:  binary.BigEndian.Uint16(seg[14:16]),
	}, seg[dataOff:], nil
}

// BuildUDPFrame assembles a complete Ethernet frame carrying a UDP datagram.
func BuildUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP, sport, dport uint16, payload []byte) []byte {
	frame := make([]byte, 0, EthHeaderLen+IPv4HeaderLen+UDPHeaderLen+len(payload))
	eh := EthHeader{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	frame = eh.Marshal(frame)
	udp := MarshalUDP(nil, srcIP, dstIP, UDPHeader{SrcPort: sport, DstPort: dport}, payload)
	ih := IPv4Header{Proto: ProtoUDP, TTL: 64, Src: srcIP, Dst: dstIP}
	frame = ih.Marshal(frame, len(udp))
	return append(frame, udp...)
}

// BuildTCPFrame assembles a complete Ethernet frame carrying a TCP segment.
func BuildTCPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP, h TCPHeader, payload []byte) []byte {
	frame := make([]byte, 0, EthHeaderLen+IPv4HeaderLen+TCPHeaderLen+len(payload))
	eh := EthHeader{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	frame = eh.Marshal(frame)
	tcp := MarshalTCP(nil, srcIP, dstIP, h, payload)
	ih := IPv4Header{Proto: ProtoTCP, TTL: 64, Src: srcIP, Dst: dstIP}
	frame = ih.Marshal(frame, len(tcp))
	return append(frame, tcp...)
}
