package netstack

import (
	"testing"

	"sud/internal/kernel/shadow"
)

// TestRecoveryHoldsTxAndAdopts: an interface whose supervised driver died
// holds transmit in the stalled state (the caller sees backpressure, not a
// vanished device), the restarted driver adopts the same Iface object, and
// CompleteRecovery replays the recorded bring-up and releases TX.
func TestRecoveryHoldsTxAndAdopts(t *testing.T) {
	s, ifc, dev := newStack(t)
	ifc.Shadow = &shadow.Net{}

	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if !ifc.Recovering() || ifc.Epoch() != 1 {
		t.Fatalf("recovering=%v epoch=%d", ifc.Recovering(), ifc.Epoch())
	}
	if ifc.Shadow.Snapshots != 1 || !ifc.Shadow.Up || ifc.Shadow.IP != [4]byte(ipA) {
		t.Fatalf("shadow snapshot %+v", ifc.Shadow)
	}
	if ifc.Shadow.MAC != [6]byte(macA) || ifc.Shadow.Queues != 1 {
		t.Fatalf("shadow mirror fields %+v", ifc.Shadow)
	}
	if ifc.Shadow.Carrier != ifc.Carrier() {
		t.Fatalf("shadow carrier %v != iface carrier %v", ifc.Shadow.Carrier, ifc.Carrier())
	}
	// TX holds: the stack reports the queue stopped, no frame reaches the
	// dead driver.
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err == nil {
		t.Fatal("transmit succeeded into a dead driver")
	}
	if len(dev.tx) != 0 {
		t.Fatal("frame reached the dead driver")
	}
	// A stale wake from the dead incarnation must not release TX early.
	ifc.WakeQueue()
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err == nil {
		t.Fatal("stale wake released TX mid-recovery")
	}

	// The restarted driver registers the same name+MAC and adopts.
	dev2 := &loopDev{}
	ifc2, err := s.Register("eth0", [6]byte(macA), dev2)
	if err != nil {
		t.Fatal(err)
	}
	if ifc2 != ifc {
		t.Fatal("registration did not adopt the recovering interface")
	}
	if err := ifc.CompleteRecovery(); err != nil {
		t.Fatal(err)
	}
	if !dev2.opened {
		t.Fatal("bring-up not replayed to the restarted driver")
	}
	if ifc.Recovering() || !ifc.IsUp() || ifc.IP != ipA {
		t.Fatalf("post-recovery state: recovering=%v up=%v ip=%v", ifc.Recovering(), ifc.IsUp(), ifc.IP)
	}
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err != nil {
		t.Fatalf("transmit after recovery: %v", err)
	}
	if len(dev2.tx) != 1 {
		t.Fatal("frame did not reach the restarted driver")
	}
}

// TestRecoveryAdoptionRequiresMatchingMAC: a driver reading a different
// hardware address is a different device and must not adopt the interface.
func TestRecoveryAdoptionRequiresMatchingMAC(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("eth0", [6]byte(macB), &loopDev{}); err == nil {
		t.Fatal("foreign MAC adopted the recovering interface")
	}
	ifc2, err := s.Register("eth0", [6]byte(macA), &loopDev{})
	if err != nil || ifc2 != ifc {
		t.Fatalf("matching MAC adoption: %v (same=%v)", err, ifc2 == ifc)
	}
}

// TestDeathAfterAdoptionBeforeRecoveryCompletes: the adopted incarnation
// dies while the interface is still recovering; the next BeginRecovery
// must re-enter the adoption table and bump the epoch again.
func TestDeathAfterAdoptionBeforeRecoveryCompletes(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("eth0", [6]byte(macA), &loopDev{}); err != nil {
		t.Fatal(err) // generation 1 adopts, then dies before completing
	}
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if ifc.Epoch() != 2 {
		t.Fatalf("epoch = %d after post-adoption death, want 2", ifc.Epoch())
	}
	dev3 := &loopDev{}
	ifc3, err := s.Register("eth0", [6]byte(macA), dev3)
	if err != nil || ifc3 != ifc {
		t.Fatalf("interface not re-adoptable: %v (same=%v)", err, ifc3 == ifc)
	}
	if err := ifc.CompleteRecovery(); err != nil || !dev3.opened {
		t.Fatalf("second recovery did not complete: %v opened=%v", err, dev3.opened)
	}
}

// TestUnregisterWhileRecoveringAbortsAdoption: pulling the interface
// mid-recovery leaves nothing adoptable; a later registration is fresh.
func TestUnregisterWhileRecoveringAbortsAdoption(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	s.Unregister("eth0")
	ifc2, err := s.Register("eth0", [6]byte(macA), &loopDev{})
	if err != nil {
		t.Fatal(err)
	}
	if ifc2 == ifc {
		t.Fatal("unregistered interface was adopted")
	}
	if ifc2.IsUp() {
		t.Fatal("fresh interface inherited admin state")
	}
}
