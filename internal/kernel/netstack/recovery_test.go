package netstack

import (
	"testing"

	"sud/internal/kernel/shadow"
)

// TestRecoveryHoldsTxAndAdopts: an interface whose supervised driver died
// holds transmit in the stalled state (the caller sees backpressure, not a
// vanished device), the restarted driver adopts the same Iface object, and
// CompleteRecovery replays the recorded bring-up and releases TX.
func TestRecoveryHoldsTxAndAdopts(t *testing.T) {
	s, ifc, dev := newStack(t)
	ifc.Shadow = &shadow.Net{}

	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if !ifc.Recovering() || ifc.Epoch() != 1 {
		t.Fatalf("recovering=%v epoch=%d", ifc.Recovering(), ifc.Epoch())
	}
	if ifc.Shadow.Snapshots != 1 || !ifc.Shadow.Up || ifc.Shadow.IP != [4]byte(ipA) {
		t.Fatalf("shadow snapshot %+v", ifc.Shadow)
	}
	if ifc.Shadow.MAC != [6]byte(macA) || ifc.Shadow.Queues != 1 {
		t.Fatalf("shadow mirror fields %+v", ifc.Shadow)
	}
	if ifc.Shadow.Carrier != ifc.Carrier() {
		t.Fatalf("shadow carrier %v != iface carrier %v", ifc.Shadow.Carrier, ifc.Carrier())
	}
	// TX holds: the stack reports the queue stopped, no frame reaches the
	// dead driver.
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err == nil {
		t.Fatal("transmit succeeded into a dead driver")
	}
	if len(dev.tx) != 0 {
		t.Fatal("frame reached the dead driver")
	}
	// A stale wake from the dead incarnation must not release TX early.
	ifc.WakeQueue(0)
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err == nil {
		t.Fatal("stale wake released TX mid-recovery")
	}

	// The restarted driver registers the same name+MAC and adopts.
	dev2 := &loopDev{}
	ifc2, err := s.Register("eth0", [6]byte(macA), dev2)
	if err != nil {
		t.Fatal(err)
	}
	if ifc2 != ifc {
		t.Fatal("registration did not adopt the recovering interface")
	}
	if _, err := ifc.CompleteRecovery(); err != nil {
		t.Fatal(err)
	}
	if !dev2.opened {
		t.Fatal("bring-up not replayed to the restarted driver")
	}
	if ifc.Recovering() || !ifc.IsUp() || ifc.IP != ipA {
		t.Fatalf("post-recovery state: recovering=%v up=%v ip=%v", ifc.Recovering(), ifc.IsUp(), ifc.IP)
	}
	if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte("x")); err != nil {
		t.Fatalf("transmit after recovery: %v", err)
	}
	if len(dev2.tx) != 1 {
		t.Fatal("frame did not reach the restarted driver")
	}
}

// TestTxShadowReplay: frames handed to a supervised driver are logged until
// their xmit-done credit confirms them; a kill replays exactly the
// unconfirmed tail through the restarted driver, which re-logs them as its
// own in-flight frames.
func TestTxShadowReplay(t *testing.T) {
	s, ifc, dev := newStack(t)
	ifc.Shadow = &shadow.Net{}

	for i := 0; i < 3; i++ {
		if err := s.UDPSendTo(ifc, macB, ipB, 1000, 2000, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ifc.Shadow.PendingTx(0); got != 3 {
		t.Fatalf("pending TX = %d, want 3", got)
	}
	// The first frame's credit returns: it left the wire, so it must not
	// replay.
	ifc.TxConfirm(0)
	if got := ifc.Shadow.PendingTx(0); got != 2 || ifc.Shadow.TxConfirmed != 1 {
		t.Fatalf("pending=%d confirmed=%d after credit", got, ifc.Shadow.TxConfirmed)
	}

	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	dev2 := &loopDev{}
	if _, err := s.Register("eth0", [6]byte(macA), dev2); err != nil {
		t.Fatal(err)
	}
	n, err := ifc.CompleteRecovery()
	if err != nil || n != 2 {
		t.Fatalf("replayed %d frames (err %v), want 2", n, err)
	}
	if len(dev2.tx) != 2 {
		t.Fatalf("restarted driver got %d frames, want 2", len(dev2.tx))
	}
	// The replayed frames are byte-identical to the swallowed originals
	// (frames 1 and 2; frame 0 was confirmed).
	for i, f := range dev2.tx {
		if want := dev.tx[i+1]; string(f) != string(want) {
			t.Fatalf("replayed frame %d differs from original", i)
		}
	}
	// Replay re-enters the log: the frames are in flight in the new
	// incarnation and will be confirmed by its own credits.
	if got := ifc.Shadow.PendingTx(0); got != 2 || ifc.Shadow.TxReplayed != 2 {
		t.Fatalf("pending=%d replayed=%d after recovery", got, ifc.Shadow.TxReplayed)
	}
	ifc.TxConfirm(0)
	ifc.TxConfirm(0)
	if got := ifc.Shadow.PendingTx(0); got != 0 {
		t.Fatalf("pending=%d after all credits, want 0", got)
	}
}

// TestTxShadowLogBound: the per-queue log is bounded at TxLogCap; a driver
// withholding credits evicts oldest-first instead of growing without bound.
func TestTxShadowLogBound(t *testing.T) {
	sh := &shadow.Net{}
	for i := 0; i < shadow.TxLogCap+5; i++ {
		sh.RecordXmit(0, []byte{byte(i)})
	}
	if got := sh.PendingTx(0); got != shadow.TxLogCap {
		t.Fatalf("pending = %d, want cap %d", got, shadow.TxLogCap)
	}
	if sh.TxOverflow != 5 {
		t.Fatalf("overflow = %d, want 5", sh.TxOverflow)
	}
	// Oldest entries were the ones evicted.
	if frames := sh.TakePendingTx(0); frames[0][0] != 5 {
		t.Fatalf("oldest surviving frame = %d, want 5", frames[0][0])
	}
}

// TestRecoveryAdoptionRequiresMatchingMAC: a driver reading a different
// hardware address is a different device and must not adopt the interface.
func TestRecoveryAdoptionRequiresMatchingMAC(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("eth0", [6]byte(macB), &loopDev{}); err == nil {
		t.Fatal("foreign MAC adopted the recovering interface")
	}
	ifc2, err := s.Register("eth0", [6]byte(macA), &loopDev{})
	if err != nil || ifc2 != ifc {
		t.Fatalf("matching MAC adoption: %v (same=%v)", err, ifc2 == ifc)
	}
}

// TestDeathAfterAdoptionBeforeRecoveryCompletes: the adopted incarnation
// dies while the interface is still recovering; the next BeginRecovery
// must re-enter the adoption table and bump the epoch again.
func TestDeathAfterAdoptionBeforeRecoveryCompletes(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("eth0", [6]byte(macA), &loopDev{}); err != nil {
		t.Fatal(err) // generation 1 adopts, then dies before completing
	}
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	if ifc.Epoch() != 2 {
		t.Fatalf("epoch = %d after post-adoption death, want 2", ifc.Epoch())
	}
	dev3 := &loopDev{}
	ifc3, err := s.Register("eth0", [6]byte(macA), dev3)
	if err != nil || ifc3 != ifc {
		t.Fatalf("interface not re-adoptable: %v (same=%v)", err, ifc3 == ifc)
	}
	if _, err := ifc.CompleteRecovery(); err != nil || !dev3.opened {
		t.Fatalf("second recovery did not complete: %v opened=%v", err, dev3.opened)
	}
}

// TestUnregisterWhileRecoveringAbortsAdoption: pulling the interface
// mid-recovery leaves nothing adoptable; a later registration is fresh.
func TestUnregisterWhileRecoveringAbortsAdoption(t *testing.T) {
	s, ifc, _ := newStack(t)
	if _, err := s.BeginRecovery("eth0"); err != nil {
		t.Fatal(err)
	}
	s.Unregister("eth0")
	ifc2, err := s.Register("eth0", [6]byte(macA), &loopDev{})
	if err != nil {
		t.Fatal(err)
	}
	if ifc2 == ifc {
		t.Fatal("unregistered interface was adopted")
	}
	if ifc2.IsUp() {
		t.Fatal("fresh interface inherited admin state")
	}
}
