package blockdev

import (
	"errors"
	"fmt"
	"testing"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

// fakeDrv is a scriptable block driver: it queues submissions and lets the
// test complete them by hand through the BlockKernel half.
type fakeDrv struct {
	queues  int
	limit   int // per-queue accept limit before reporting full
	pending [][]api.BlockRequest
	opened  bool
}

func newFake(queues, limit int) *fakeDrv {
	return &fakeDrv{queues: queues, limit: limit, pending: make([][]api.BlockRequest, queues)}
}

func (f *fakeDrv) Open() error { f.opened = true; return nil }
func (f *fakeDrv) Stop() error { f.opened = false; return nil }
func (f *fakeDrv) Queues() int { return f.queues }
func (f *fakeDrv) Submit(q int, req api.BlockRequest) error {
	if len(f.pending[q]) >= f.limit {
		return fmt.Errorf("full")
	}
	f.pending[q] = append(f.pending[q], req)
	return nil
}

func newMgr() *Manager {
	loop := sim.NewLoop()
	stats := sim.NewCPUStats(2)
	return New(loop, stats.Account("kernel"))
}

func geom() api.BlockGeometry { return api.BlockGeometry{BlockSize: 512, Blocks: 100} }

func TestRegisterAndLookup(t *testing.T) {
	m := newMgr()
	f := newFake(2, 4)
	d, err := m.Register("d0", geom(), f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register("d0", geom(), f); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("duplicate register: %v", err)
	}
	if d.NumQueues() != 2 {
		t.Fatalf("queues = %d", d.NumQueues())
	}
	if err := d.Up(); err != nil || !f.opened {
		t.Fatalf("up: %v opened=%v", err, f.opened)
	}
}

func TestCompleteMatchesTag(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	var got []byte
	var gotErr error
	if err := d.ReadAtQ(5, 0, func(b []byte, err error) { got, gotErr = b, err }); err != nil {
		t.Fatal(err)
	}
	req := f.pending[0][0]
	if req.Write || req.LBA != 5 {
		t.Fatalf("driver saw %+v", req)
	}
	// A completion with a bogus tag is dropped and counted, never
	// delivered to a caller.
	d.Complete(0, req.Tag+999, nil, make([]byte, 512))
	if d.BadCompletions != 1 || got != nil {
		t.Fatalf("bogus tag: bad=%d got=%v", d.BadCompletions, got)
	}
	payload := make([]byte, 512)
	payload[0] = 0x42
	d.Complete(0, req.Tag, nil, payload)
	if gotErr != nil || got[0] != 0x42 {
		t.Fatalf("completion: %v %v", got, gotErr)
	}
	// Replaying the same tag is dropped too.
	d.Complete(0, req.Tag, nil, payload)
	if d.BadCompletions != 2 {
		t.Fatalf("replayed tag accepted")
	}
}

func TestShortReadSurfacesAsError(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()
	var gotErr error
	_ = d.ReadAtQ(1, 0, func(_ []byte, err error) { gotErr = err })
	d.Complete(0, f.pending[0][0].Tag, nil, make([]byte, 17))
	if gotErr == nil {
		t.Fatal("short read delivered as success")
	}
}

func TestStallParksAndWakeDrains(t *testing.T) {
	m := newMgr()
	f := newFake(2, 2)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	for i := 0; i < 5; i++ {
		if err := d.ReadAtQ(uint64(i), 0, func([]byte, error) {}); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.pending[0]) != 2 || d.Queue(0).Waiting() != 3 || !d.Queue(0).Stalled() {
		t.Fatalf("pending=%d waiting=%d stalled=%v",
			len(f.pending[0]), d.Queue(0).Waiting(), d.Queue(0).Stalled())
	}
	// Queue 1 is unaffected by queue 0's stall.
	if err := d.ReadAtQ(9, 1, func([]byte, error) {}); err != nil || len(f.pending[1]) != 1 {
		t.Fatalf("sibling queue stalled: %v", err)
	}
	// Driver completes one and wakes: exactly one parked request drains
	// (the hardware queue re-fills to its limit).
	req := f.pending[0][0]
	f.pending[0] = f.pending[0][1:]
	d.Complete(0, req.Tag, nil, make([]byte, 512))
	woke := false
	d.Queue(0).OnWake = func() { woke = true }
	d.WakeQueueQ(0)
	if len(f.pending[0]) != 2 || d.Queue(0).Waiting() != 2 {
		t.Fatalf("after wake: pending=%d waiting=%d", len(f.pending[0]), d.Queue(0).Waiting())
	}
	// Still stalled (driver full again): the wake hook only fires once the
	// software queue fully drains.
	if woke {
		t.Fatal("OnWake fired while still stalled")
	}
}

func TestCongestionBounded(t *testing.T) {
	m := newMgr()
	f := newFake(1, 1)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()
	var err error
	for i := 0; i < MaxQueuedPerQueue+10; i++ {
		err = d.ReadAtQ(1, 0, func([]byte, error) {})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCongested) {
		t.Fatalf("unbounded parking: %v", err)
	}
}

func TestUnregisterFailsInflight(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()
	var gotErr error
	_ = d.ReadAtQ(1, 0, func(_ []byte, err error) { gotErr = err })
	m.Unregister("d0")
	if !errors.Is(gotErr, ErrDown) {
		t.Fatalf("in-flight request not failed on unregister: %v", gotErr)
	}
	if _, err := m.Dev("d0"); err == nil {
		t.Fatal("device still registered")
	}
}

func TestWriteValidatesSize(t *testing.T) {
	m := newMgr()
	d, _ := m.Register("d0", geom(), newFake(1, 8))
	_ = d.Up()
	if err := d.WriteAt(1, make([]byte, 513), func(error) {}); !errors.Is(err, ErrBadSize) {
		t.Fatalf("oversize write: %v", err)
	}
	if err := d.WriteAt(200, make([]byte, 512), func(error) {}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}
}

func TestQueueForLBASpreads(t *testing.T) {
	counts := make([]int, 4)
	for lba := uint64(0); lba < 1000; lba++ {
		counts[QueueForLBA(lba, 4)]++
	}
	for q, n := range counts {
		if n < 100 {
			t.Fatalf("queue %d starved: %d/1000", q, n)
		}
	}
}
