// Package blockdev is the kernel block layer: the trusted core that owns
// block devices registered by drivers (RegisterBlockDev), splits each
// device's submission state into per-queue contexts — one per hardware
// queue pair the driver exposes — and offers single-block ReadAt/WriteAt
// with software request queues and per-queue stall/wake, the blk-mq shape
// of netstack's per-queue interface contexts. It trusts nothing about the
// driver's liveness: a full hardware queue parks requests in that queue's
// software queue only, and completions are matched by kernel-allocated tag,
// so a driver cannot complete a request it was never given (§3.1's
// defensive proxy discipline applied to storage).
//
// The core is also where shadow-driver recovery (§2, §5.2: restarting a
// crashed untrusted driver) lands for storage. A device with an attached
// shadow (internal/kernel/shadow) logs every dispatched request; when its
// driver process dies under supervision, BeginRecovery parks — instead of
// fails — both the in-flight and newly submitted requests, bumps the
// device's epoch (so the dead incarnation's proxy can no longer complete
// anything), and marks the device adoptable. The restarted driver's
// registration adopts the existing device object — application handles
// survive — and CompleteRecovery replays the shadow's in-flight log in
// per-queue submission order under the original tags before releasing the
// parked queues. Applications observe added latency, never an error.
package blockdev

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel/shadow"
	"sud/internal/sim"
)

// Path costs of the block core itself, per request (see
// internal/sim/costs.go for the calibration rationale).
const (
	// CostSubmitPath is request allocation, tag assignment and queue
	// bookkeeping on submission.
	CostSubmitPath sim.Duration = 1000
	// CostCompletePath is completion matching and callback dispatch.
	CostCompletePath sim.Duration = 800
)

// MaxQueuedPerQueue bounds one queue context's software request queue; past
// it submissions fail with ErrCongested and the caller must back off, so a
// stalled hardware queue cannot pin unbounded kernel memory.
const MaxQueuedPerQueue = 256

// Errors returned by the submission path.
var (
	ErrNameTaken  = fmt.Errorf("blockdev: device name already registered")
	ErrOutOfRange = fmt.Errorf("blockdev: LBA out of range")
	ErrBadSize    = fmt.Errorf("blockdev: payload is not one block")
	ErrDown       = fmt.Errorf("blockdev: device is down")
	ErrCongested  = fmt.Errorf("blockdev: request queue full")
)

// Manager is the kernel's block core.
type Manager struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount // the kernel CPU account

	devs map[string]*Dev

	// adopting holds devices whose driver died under supervision: they are
	// waiting for the restarted driver's registration to adopt them.
	adopting map[string]*Dev
}

// New returns an empty block core charging CPU to acct.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Manager {
	return &Manager{Loop: loop, Acct: acct,
		devs: make(map[string]*Dev), adopting: make(map[string]*Dev)}
}

// Register adds a block device for a driver. Names must be unique (proxy
// drivers retry with the kernel's name template, like netdevs). If a device
// is awaiting adoption (its supervised driver died) and the registered
// geometry matches, the existing device object is adopted instead: the new
// driver backs the same Dev every application handle already points at.
func (m *Manager) Register(name string, geom api.BlockGeometry, drv api.BlockDevice) (*Dev, error) {
	if d := m.adopt(name, geom); d != nil {
		d.drv = drv
		return d, nil
	}
	if _, dup := m.devs[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	if geom.BlockSize <= 0 || geom.Blocks == 0 {
		return nil, fmt.Errorf("blockdev: bad geometry %+v", geom)
	}
	d := &Dev{Name: name, Geom: geom, mgr: m, drv: drv, inflight: make(map[uint64]*request)}
	nq := drv.Queues()
	if nq < 1 {
		nq = 1
	}
	d.queues = make([]QueueCtx, nq)
	for q := range d.queues {
		d.queues[q].ID = q
	}
	m.devs[name] = d
	return d, nil
}

// Unregister removes a device (driver removal / process death). Requests
// still in flight complete with ErrDown so no caller waits forever on a
// dead driver. Unregistering a device mid-recovery aborts the recovery:
// parked and logged requests fail the same way, the shadow log is dropped,
// and no later registration can adopt the dead device.
func (m *Manager) Unregister(name string) {
	d, ok := m.devs[name]
	if !ok {
		return
	}
	delete(m.devs, name)
	delete(m.adopting, name)
	d.up = false
	d.recovering = false
	d.replay = nil
	if d.shadow != nil {
		d.shadow.Reset()
	}
	for tag, r := range d.inflight {
		delete(d.inflight, tag)
		r.cb(nil, ErrDown)
	}
	for q := range d.queues {
		qc := &d.queues[q]
		for _, w := range qc.waiting {
			w.cb(nil, ErrDown)
		}
		qc.waiting = nil
	}
}

// BeginRecovery marks name's device as recovering: its driver process died
// under supervision. From this instant until CompleteRecovery, submissions
// park in the per-queue software queues instead of failing, in-flight
// requests stay tabled awaiting replay, and the device epoch is bumped so
// completions still signed by the dead incarnation's proxy are rejected.
// The device is entered into the adoption table for the restarted driver's
// registration. A second death before anyone adopted changes nothing
// (idempotent); a death AFTER adoption — the restarted incarnation dying
// mid-replay or failing its recovery open — re-enters the adoption table
// and bumps the epoch again, cutting off the incarnation that just died.
func (m *Manager) BeginRecovery(name string) (*Dev, error) {
	d, ok := m.devs[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no device %q to recover", name)
	}
	if _, pending := m.adopting[name]; pending && d.recovering {
		return d, nil // second death with no incarnation bound in between
	}
	d.recovering = true
	d.epoch++
	for q := range d.queues {
		d.queues[q].stalled = true
	}
	m.adopting[name] = d
	return d, nil
}

// adopt matches a registration against the adoption table by exact name;
// the mirrored geometry must also agree — a restarted driver reporting
// different media is not the same device, and must not inherit its request
// log. There is deliberately no geometry-only fallback: geometry identifies
// a device model, not a device, and an unrelated same-sized disk registered
// during the adoption window must not inherit another device's in-flight
// requests. A recovering device renamed by the uniquing template is still
// found, because the proxy's registration retry walks the template names.
func (m *Manager) adopt(name string, geom api.BlockGeometry) *Dev {
	d, ok := m.adopting[name]
	if !ok || d.Geom != geom {
		return nil
	}
	delete(m.adopting, name)
	return d
}

// Dev looks up a device by name.
func (m *Manager) Dev(name string) (*Dev, error) {
	d, ok := m.devs[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no device %q", name)
	}
	return d, nil
}

// Names lists registered devices.
func (m *Manager) Names() []string {
	var out []string
	for n := range m.devs {
		out = append(out, n)
	}
	return out
}

// QueueCtx is one per-queue context of a block device: its own stall state,
// its own software request queue, and its own counters. Splitting this
// state per queue is what lets one full hardware queue park only the
// requests steered onto it — sibling queues keep submitting.
type QueueCtx struct {
	ID int

	stalled bool
	waiting []queued

	// Per-queue traffic counters. Replays counts requests re-submitted to
	// a restarted driver by shadow recovery.
	Reads, Writes, Completions, Errors, Replays uint64

	// OnWake, if set, runs when this queue is woken; when unset the
	// device-level OnWake hook fires instead.
	OnWake func()
}

// Stalled reports the queue's backpressure state (tests and pacing logic).
func (qc *QueueCtx) Stalled() bool { return qc.stalled }

// Waiting reports the software queue depth.
func (qc *QueueCtx) Waiting() int { return len(qc.waiting) }

// queued is one parked submission.
type queued struct {
	req api.BlockRequest
	cb  func([]byte, error)
}

// request is one in-flight request awaiting completion.
type request struct {
	q     int
	write bool
	cb    func([]byte, error)
}

// Dev is one registered block device. It implements api.BlockKernel — it is
// what RegisterBlockDev hands back to the driver.
type Dev struct {
	Name string
	Geom api.BlockGeometry

	mgr *Manager
	drv api.BlockDevice
	up  bool

	// Shadow recovery state: the request log (attached by the supervisor),
	// the recovering flag (park, don't fail), the per-queue replay
	// schedules built at CompleteRecovery, and the epoch — incremented on
	// every driver death, so a proxy bound to a dead incarnation can be
	// told apart from the adopted one.
	shadow     *shadow.Block
	recovering bool
	epoch      uint64
	replay     [][]shadow.PendingBlock

	queues   []QueueCtx
	inflight map[uint64]*request
	nextTag  uint64

	// OnWake, if set, runs when the driver wakes a queue with no
	// queue-level hook (backpressure release for the benchmark loop).
	OnWake func()

	// BadCompletions counts driver completions with unknown or reused
	// tags — a confused or malicious driver, dropped and counted.
	BadCompletions uint64
}

var _ api.BlockKernel = (*Dev)(nil)

// NumQueues reports the device's queue-context count.
func (d *Dev) NumQueues() int { return len(d.queues) }

// AttachShadow arms shadow recovery: from now on every dispatched request is
// logged until its completion is delivered. The supervisor attaches the
// shadow when it takes ownership of the device's driver process.
func (d *Dev) AttachShadow(s *shadow.Block) { d.shadow = s }

// Shadow returns the attached shadow (nil when unsupervised).
func (d *Dev) Shadow() *shadow.Block { return d.shadow }

// Epoch reports the device's driver incarnation epoch; it increments on
// every BeginRecovery. Proxies record the epoch they bound at and reject
// their own late completions once it moves on.
func (d *Dev) Epoch() uint64 { return d.epoch }

// Recovering reports whether the device is between driver incarnations.
func (d *Dev) Recovering() bool { return d.recovering }

// Queue returns queue q's context (clamped), for per-queue hooks and stats.
func (d *Dev) Queue(q int) *QueueCtx { return &d.queues[d.clampQ(q)] }

func (d *Dev) clampQ(q int) int {
	if q < 0 || q >= len(d.queues) {
		return 0
	}
	return q
}

// Up brings the device online (→ driver Open: queue creation, IRQ).
func (d *Dev) Up() error {
	if d.up {
		return nil
	}
	if err := d.drv.Open(); err != nil {
		return fmt.Errorf("blockdev: open %s: %w", d.Name, err)
	}
	d.up = true
	return nil
}

// Down quiesces the device (→ driver Stop).
func (d *Dev) Down() error {
	if !d.up {
		return nil
	}
	d.up = false
	return d.drv.Stop()
}

// IsUp reports admin state.
func (d *Dev) IsUp() bool { return d.up }

// InFlight reports requests submitted but not yet completed.
func (d *Dev) InFlight() int { return len(d.inflight) }

// QueueForLBA is the submission steering hash: the queue a block lands on
// among nq queues. Fibonacci hashing spreads sequential LBAs uniformly, so
// a striding reader exercises every queue pair — the storage analogue of
// spreading flows by transport-port hash.
func QueueForLBA(lba uint64, nq int) int {
	if nq <= 1 {
		return 0
	}
	return int((lba * 0x9E3779B97F4A7C15 >> 32) % uint64(nq))
}

// ReadAt reads the block at lba, steering by LBA hash; cb receives the
// payload (or an error) when the driver completes.
func (d *Dev) ReadAt(lba uint64, cb func([]byte, error)) error {
	return d.ReadAtQ(lba, QueueForLBA(lba, len(d.queues)), cb)
}

// ReadAtQ reads the block at lba on an explicit queue.
func (d *Dev) ReadAtQ(lba uint64, q int, cb func([]byte, error)) error {
	return d.submit(q, api.BlockRequest{LBA: lba}, cb)
}

// WriteAt writes one block (exactly BlockSize bytes) at lba, steering by
// LBA hash; cb receives nil or an error on completion.
func (d *Dev) WriteAt(lba uint64, data []byte, cb func(error)) error {
	return d.WriteAtQ(lba, QueueForLBA(lba, len(d.queues)), data, cb)
}

// WriteAtQ writes one block at lba on an explicit queue.
func (d *Dev) WriteAtQ(lba uint64, q int, data []byte, cb func(error)) error {
	if len(data) != d.Geom.BlockSize {
		return ErrBadSize
	}
	// The block core owns the payload for the request's lifetime, like
	// the page cache owns a bio's pages.
	buf := make([]byte, len(data))
	copy(buf, data)
	d.mgr.Acct.Charge(sim.Copy(len(data)))
	return d.submit(q, api.BlockRequest{Write: true, LBA: lba, Data: buf},
		func(_ []byte, err error) { cb(err) })
}

// submit validates, tags and dispatches one request; a stalled or full
// hardware queue — or a device whose driver is being restarted — parks it
// in that queue's software queue.
func (d *Dev) submit(q int, req api.BlockRequest, cb func([]byte, error)) error {
	if !d.up {
		return ErrDown
	}
	if req.LBA >= d.Geom.Blocks {
		return ErrOutOfRange
	}
	q = d.clampQ(q)
	qc := &d.queues[q]
	d.mgr.Acct.Charge(CostSubmitPath)
	if qc.stalled || d.recovering {
		if len(qc.waiting) >= MaxQueuedPerQueue {
			return ErrCongested
		}
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
		return nil
	}
	if !d.dispatch(q, req, cb) {
		qc.stalled = true
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
	}
	return nil
}

// dispatch hands one request to the driver; it reports false when the
// hardware queue refused it (park and stall).
func (d *Dev) dispatch(q int, req api.BlockRequest, cb func([]byte, error)) bool {
	qc := &d.queues[q]
	req.Tag = d.nextTag
	d.nextTag++
	d.inflight[req.Tag] = &request{q: q, write: req.Write, cb: cb}
	if err := d.drv.Submit(q, req); err != nil {
		delete(d.inflight, req.Tag)
		return false
	}
	if d.shadow != nil {
		d.shadow.RecordSubmit(q, req)
	}
	if req.Write {
		qc.Writes++
	} else {
		qc.Reads++
	}
	return true
}

// --- api.BlockKernel (driver → kernel) ---------------------------------------

// Complete implements api.BlockKernel: request tag finished on queue q. For
// trusted in-kernel drivers data is the driver's own buffer; the SUD proxy
// calls the same entry after validating and guard-copying the untrusted
// reference.
func (d *Dev) Complete(q int, tag uint64, err error, data []byte) {
	r, ok := d.inflight[tag]
	if !ok {
		d.BadCompletions++
		return
	}
	delete(d.inflight, tag)
	if d.shadow != nil {
		d.shadow.RecordComplete(tag)
	}
	qc := &d.queues[d.clampQ(q)]
	qc.Completions++
	d.mgr.Acct.Charge(CostCompletePath)
	if err == nil && !r.write && len(data) != d.Geom.BlockSize {
		err = fmt.Errorf("blockdev: short read (%d bytes)", len(data))
	}
	if err != nil {
		qc.Errors++
		r.cb(nil, err)
		return
	}
	r.cb(data, nil)
}

// WakeQueueQ implements api.BlockKernel: queue q's hardware queue regained
// space; drain its software queue and notify the submitter. Replays left
// over from a recovery go first — they carry the oldest tags and must reach
// the restarted driver before any parked request that was submitted after
// them.
func (d *Dev) WakeQueueQ(q int) {
	qc := &d.queues[d.clampQ(q)]
	if d.recovering {
		// A wake between driver incarnations (a stale proxy, or a death
		// racing the doorbell) must not release parked requests into a
		// driver that no longer exists.
		return
	}
	if !d.drainReplay(qc.ID) {
		qc.stalled = true
		return
	}
	qc.stalled = false
	for len(qc.waiting) > 0 {
		w := qc.waiting[0]
		if !d.dispatch(qc.ID, w.req, w.cb) {
			qc.stalled = true
			return
		}
		qc.waiting = qc.waiting[1:]
	}
	if h := qc.OnWake; h != nil {
		h()
		return
	}
	if d.OnWake != nil {
		d.OnWake()
	}
}

// drainReplay feeds queue q's remaining replay schedule to the (restarted)
// driver in original submission order, under the original tags — their
// callbacks are still tabled in d.inflight. It reports false if the driver
// refused a replay (queue full: continue on the next wake).
func (d *Dev) drainReplay(q int) bool {
	if d.replay == nil || q >= len(d.replay) {
		return true
	}
	for len(d.replay[q]) > 0 {
		p := d.replay[q][0]
		d.mgr.Acct.Charge(CostSubmitPath)
		if err := d.drv.Submit(q, p.Req); err != nil {
			return false
		}
		d.replay[q] = d.replay[q][1:]
		d.queues[q].Replays++
		if d.shadow != nil {
			d.shadow.Replayed++
		}
	}
	return true
}

// CompleteRecovery finishes a shadow recovery after the restarted driver
// has adopted the device: bring-up is replayed (the driver's Open — queue
// creation, IRQ), the shadow's in-flight log becomes the per-queue replay
// schedule, and every queue is released — replays first, then parked
// submissions. It returns the number of requests scheduled for replay. On
// an Open failure the device stays recovering (parked requests intact), so
// a second restart can try again.
func (d *Dev) CompleteRecovery() (int, error) {
	if !d.recovering {
		return 0, nil
	}
	if d.up {
		if err := d.drv.Open(); err != nil {
			return 0, fmt.Errorf("blockdev: recovery open %s: %w", d.Name, err)
		}
	}
	n := 0
	if d.shadow != nil {
		d.replay = d.shadow.PendingByQueue(len(d.queues))
		for q := range d.replay {
			n += len(d.replay[q])
		}
	}
	d.recovering = false
	for q := range d.queues {
		d.WakeQueueQ(q)
	}
	return n, nil
}
