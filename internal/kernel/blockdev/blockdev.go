// Package blockdev is the kernel block layer: the trusted core that owns
// block devices registered by drivers (RegisterBlockDev), splits each
// device's submission state into per-queue contexts — one per hardware
// queue pair the driver exposes — and offers single-block ReadAt/WriteAt
// with software request queues and per-queue stall/wake, the blk-mq shape
// of netstack's per-queue interface contexts. It trusts nothing about the
// driver's liveness: a full hardware queue parks requests in that queue's
// software queue only, and completions are matched by kernel-allocated tag,
// so a driver cannot complete a request it was never given (§3.1's
// defensive proxy discipline applied to storage).
//
// The core is also where shadow-driver recovery (§2, §5.2: restarting a
// crashed untrusted driver) lands for storage. A device with an attached
// shadow (internal/kernel/shadow) logs every dispatched request; when its
// driver process dies under supervision, BeginRecovery parks — instead of
// fails — both the in-flight and newly submitted requests, bumps the
// device's epoch (so the dead incarnation's proxy can no longer complete
// anything), and marks the device adoptable. The restarted driver's
// registration adopts the existing device object — application handles
// survive — and CompleteRecovery replays the shadow's in-flight log in
// per-queue submission order under the original tags before releasing the
// parked queues. Applications observe added latency, never an error.
package blockdev

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel/shadow"
	"sud/internal/sim"
	"sud/internal/trace"
)

// Path costs of the block core itself, per request (see
// internal/sim/costs.go for the calibration rationale).
const (
	// CostSubmitPath is request allocation, tag assignment and queue
	// bookkeeping on submission.
	CostSubmitPath sim.Duration = 1000
	// CostCompletePath is completion matching and callback dispatch.
	CostCompletePath sim.Duration = 800
)

// MaxQueuedPerQueue bounds one queue context's software request queue; past
// it submissions fail with ErrCongested and the caller must back off, so a
// stalled hardware queue cannot pin unbounded kernel memory.
const MaxQueuedPerQueue = 256

// Errors returned by the submission path.
var (
	ErrNameTaken  = fmt.Errorf("blockdev: device name already registered")
	ErrOutOfRange = fmt.Errorf("blockdev: LBA out of range")
	ErrBadSize    = fmt.Errorf("blockdev: payload is not one block")
	ErrDown       = fmt.Errorf("blockdev: device is down")
	ErrCongested  = fmt.Errorf("blockdev: request queue full")
)

// Manager is the kernel's block core.
type Manager struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount // the kernel CPU account

	// Trace is the machine's span plane (kernel.New threads it from
	// hw.Machine); nil-safe, and free unless spans are enabled.
	Trace *trace.Tracer

	devs map[string]*Dev

	// adopting holds devices whose driver died under supervision: they are
	// waiting for the restarted driver's registration to adopt them.
	adopting map[string]*Dev

	// standbys holds hot-standby drivers pre-registered for a live device:
	// the failover half of adoption. The geometry check that Register's
	// adopt path performs at restart time runs here at arm time instead,
	// so promotion after a kill is a table move, not a probe.
	standbys map[string]api.BlockDevice
}

// New returns an empty block core charging CPU to acct.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Manager {
	return &Manager{Loop: loop, Acct: acct,
		devs: make(map[string]*Dev), adopting: make(map[string]*Dev),
		standbys: make(map[string]api.BlockDevice)}
}

// Register adds a block device for a driver. Names must be unique (proxy
// drivers retry with the kernel's name template, like netdevs). If a device
// is awaiting adoption (its supervised driver died) and the registered
// geometry matches, the existing device object is adopted instead: the new
// driver backs the same Dev every application handle already points at.
func (m *Manager) Register(name string, geom api.BlockGeometry, drv api.BlockDevice) (*Dev, error) {
	if d := m.adopt(name, geom); d != nil {
		d.drv = drv
		return d, nil
	}
	if _, dup := m.devs[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	if geom.BlockSize <= 0 || geom.Blocks == 0 {
		return nil, fmt.Errorf("blockdev: bad geometry %+v", geom)
	}
	d := &Dev{Name: name, Geom: geom, mgr: m, drv: drv, inflight: make(map[uint64]*request)}
	nq := drv.Queues()
	if nq < 1 {
		nq = 1
	}
	d.queues = make([]QueueCtx, nq)
	for q := range d.queues {
		d.queues[q].ID = q
	}
	d.lat = make([]trace.Hist, nq)
	m.devs[name] = d
	return d, nil
}

// Unregister removes a device (driver removal / process death). Requests
// still in flight complete with ErrDown so no caller waits forever on a
// dead driver. Unregistering a device mid-recovery aborts the recovery:
// parked and logged requests fail the same way, the shadow log is dropped,
// and no later registration can adopt the dead device.
func (m *Manager) Unregister(name string) {
	d, ok := m.devs[name]
	if !ok {
		return
	}
	delete(m.devs, name)
	delete(m.adopting, name)
	delete(m.standbys, name)
	d.up = false
	d.recovering = false
	d.replay = nil
	if d.shadow != nil {
		d.shadow.Reset()
	}
	// Barriers fail like requests: a dispatched flush fails through its
	// in-flight entry below; an undispatched or queued one fails here.
	if b := d.barrier; b != nil && !b.dispatched {
		d.barrier = nil
		b.cb(ErrDown)
	}
	for _, b := range d.flushQ {
		b.cb(ErrDown)
	}
	d.flushQ = nil
	for tag, r := range d.inflight {
		delete(d.inflight, tag)
		r.cb(nil, ErrDown)
	}
	for q := range d.queues {
		qc := &d.queues[q]
		qc.recovering = false
		qc.drainLeft = 0
		for _, w := range qc.waiting {
			w.cb(nil, ErrDown)
		}
		qc.waiting = nil
	}
}

// BeginRecovery marks name's device as recovering: its driver process died
// under supervision. From this instant until CompleteRecovery, submissions
// park in the per-queue software queues instead of failing, in-flight
// requests stay tabled awaiting replay, and the device epoch is bumped so
// completions still signed by the dead incarnation's proxy are rejected.
// The device is entered into the adoption table for the restarted driver's
// registration. A second death before anyone adopted changes nothing
// (idempotent); a death AFTER adoption — the restarted incarnation dying
// mid-replay or failing its recovery open — re-enters the adoption table
// and bumps the epoch again, cutting off the incarnation that just died.
func (m *Manager) BeginRecovery(name string) (*Dev, error) {
	d, ok := m.devs[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no device %q to recover", name)
	}
	if _, pending := m.adopting[name]; pending && d.recovering {
		return d, nil // second death with no incarnation bound in between
	}
	d.recovering = true
	d.epoch++
	for q := range d.queues {
		// A device-wide recovery subsumes any surgical one in progress:
		// the full replay owns every queue's drain leg.
		d.queues[q].stalled = true
		d.queues[q].recovering = false
		d.queues[q].drainLeft = 0
	}
	m.adopting[name] = d
	waiting := 0
	for q := range d.queues {
		waiting += len(d.queues[q].waiting)
	}
	d.Flight.Recordf(trace.FPark, "%s epoch %d: %d in flight, %d queued parked",
		name, d.epoch, len(d.inflight), waiting)
	return d, nil
}

// adopt matches a registration against the adoption table by exact name;
// the mirrored geometry must also agree — a restarted driver reporting
// different media is not the same device, and must not inherit its request
// log. There is deliberately no geometry-only fallback: geometry identifies
// a device model, not a device, and an unrelated same-sized disk registered
// during the adoption window must not inherit another device's in-flight
// requests. A recovering device renamed by the uniquing template is still
// found, because the proxy's registration retry walks the template names.
func (m *Manager) adopt(name string, geom api.BlockGeometry) *Dev {
	d, ok := m.adopting[name]
	if !ok || d.Geom != geom {
		return nil
	}
	delete(m.adopting, name)
	d.Flight.Recordf(trace.FAdopt, "%s epoch %d adopted by restarted driver", name, d.epoch)
	return d
}

// RegisterStandby pre-registers a hot-standby driver for the named live
// device — before any kill. The identity check that protects adoption runs
// now: the standby must mirror the device's exact geometry, so a failover
// can never hand one device's request log to a driver for different media.
// One standby may be armed per device at a time.
func (m *Manager) RegisterStandby(name string, geom api.BlockGeometry, drv api.BlockDevice) error {
	d, ok := m.devs[name]
	if !ok {
		return fmt.Errorf("blockdev: no device %q to stand by for", name)
	}
	if d.Geom != geom {
		return fmt.Errorf("blockdev: standby geometry %+v does not match %s's %+v",
			geom, name, d.Geom)
	}
	if _, dup := m.standbys[name]; dup {
		return fmt.Errorf("blockdev: device %q already has a standby", name)
	}
	m.standbys[name] = drv
	return nil
}

// UnregisterStandby disarms a pre-registered standby.
func (m *Manager) UnregisterStandby(name string) { delete(m.standbys, name) }

// HasStandby reports whether a hot standby is armed for name.
func (m *Manager) HasStandby(name string) bool {
	_, ok := m.standbys[name]
	return ok
}

// PromoteStandby binds the pre-registered standby driver to name's
// recovering device: the failover half of adoption. The device must be
// awaiting adoption (its driver died under supervision); the standby's
// identity was verified when it registered, before the kill.
func (m *Manager) PromoteStandby(name string) (*Dev, error) {
	drv, ok := m.standbys[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no standby armed for %q", name)
	}
	d, ok := m.adopting[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: device %q is not awaiting adoption", name)
	}
	delete(m.standbys, name)
	delete(m.adopting, name)
	d.drv = drv
	d.Flight.Recordf(trace.FAdopt, "%s epoch %d adopted by promoted standby", name, d.epoch)
	return d, nil
}

// Quarantine bars name's driver while letting the device object survive:
// supervision convicted (or gave up on) the driver, so every parked,
// in-flight and logged request fails with ErrDown instead of waiting for a
// restart that will never come, the shadow log is dropped, and no later
// registration can adopt the device. Unlike Unregister the device stays
// visible — down, driverless, for the admin — and its epoch is bumped once
// more so nothing the barred incarnation still holds can reach it.
func (m *Manager) Quarantine(name string) {
	d, ok := m.devs[name]
	if !ok {
		return
	}
	delete(m.adopting, name)
	delete(m.standbys, name)
	d.up = false
	d.recovering = false
	d.epoch++
	d.replay = nil
	if d.shadow != nil {
		d.shadow.Reset()
	}
	// A dispatched flush fails through its in-flight entry below; an
	// undispatched or queued one fails here (same discipline as Unregister).
	if b := d.barrier; b != nil && !b.dispatched {
		d.barrier = nil
		b.cb(ErrDown)
	}
	for _, b := range d.flushQ {
		b.cb(ErrDown)
	}
	d.flushQ = nil
	for tag, r := range d.inflight {
		delete(d.inflight, tag)
		r.cb(nil, ErrDown)
	}
	d.barrier = nil
	for q := range d.queues {
		qc := &d.queues[q]
		qc.recovering = false
		qc.drainLeft = 0
		for _, w := range qc.waiting {
			w.cb(nil, ErrDown)
		}
		qc.waiting = nil
	}
}

// Dev looks up a device by name.
func (m *Manager) Dev(name string) (*Dev, error) {
	d, ok := m.devs[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no device %q", name)
	}
	return d, nil
}

// Names lists registered devices.
func (m *Manager) Names() []string {
	var out []string
	for n := range m.devs {
		out = append(out, n)
	}
	return out
}

// QueueCtx is one per-queue context of a block device: its own stall state,
// its own software request queue, and its own counters. Splitting this
// state per queue is what lets one full hardware queue park only the
// requests steered onto it — sibling queues keep submitting.
type QueueCtx struct {
	ID int

	stalled bool
	waiting []queued

	// Surgical recovery state: the supervisor quarantined this one queue
	// (its DMA sub-domain revoked) while siblings keep flowing. Epoch is
	// the queue's own incarnation counter — completions the proxy stamps
	// with a dead incarnation's epoch are rejected without touching the
	// device-wide epoch. recovering parks this queue's submissions only;
	// drainBelow/drainLeft track the queue's own drain leg.
	Epoch      uint64
	recovering bool
	drainBelow uint64
	drainLeft  int

	// Per-queue traffic counters. Replays counts requests re-submitted to
	// a restarted driver by shadow recovery.
	Reads, Writes, Completions, Errors, Replays uint64

	// OnWake, if set, runs when this queue is woken; when unset the
	// device-level OnWake hook fires instead.
	OnWake func()
}

// Stalled reports the queue's backpressure state (tests and pacing logic).
func (qc *QueueCtx) Stalled() bool { return qc.stalled }

// Recovering reports whether this one queue is parked by a surgical
// recovery while its siblings keep flowing.
func (qc *QueueCtx) Recovering() bool { return qc.recovering }

// Waiting reports the software queue depth.
func (qc *QueueCtx) Waiting() int { return len(qc.waiting) }

// queued is one parked submission.
type queued struct {
	req api.BlockRequest
	cb  func([]byte, error)
}

// request is one in-flight request awaiting completion.
type request struct {
	q     int
	write bool
	flush bool
	// at is the dispatch stamp; Complete turns it into the per-queue
	// end-to-end latency sample (always-on metrics plane, zero cost).
	at sim.Time
	cb func([]byte, error)
}

// flushOp is one Flush() barrier moving through the device: queued, then
// active (new submissions park), then dispatched (the driver holds the
// flush; every request dispatched before it has already completed).
type flushOp struct {
	cb         func(error)
	dispatched bool
}

// Dev is one registered block device. It implements api.BlockKernel — it is
// what RegisterBlockDev hands back to the driver.
type Dev struct {
	Name string
	Geom api.BlockGeometry

	mgr *Manager
	drv api.BlockDevice
	up  bool

	// Shadow recovery state: the request log (attached by the supervisor),
	// the recovering flag (park, don't fail), the per-queue replay
	// schedules built at CompleteRecovery, and the epoch — incremented on
	// every driver death, so a proxy bound to a dead incarnation can be
	// told apart from the adopted one.
	shadow     *shadow.Block
	recovering bool
	epoch      uint64
	replay     [][]shadow.PendingBlock

	queues   []QueueCtx
	inflight map[uint64]*request
	nextTag  uint64

	// Barrier state: one flush barrier is active at a time; later Flush()
	// calls queue behind it. While a barrier is active every new
	// submission parks in its queue's software queue, and the flush
	// itself is dispatched only once the in-flight table drains — so a
	// flush completion means every write acked before it is durable, in
	// every queue (the §3.1.2 guard family's durability member).
	barrier *flushOp
	flushQ  []*flushOp

	// OnWake, if set, runs when the driver wakes a queue with no
	// queue-level hook (backpressure release for the benchmark loop).
	OnWake func()

	// Flushes counts completed flush barriers; FUAWrites counts
	// force-unit-access writes dispatched to the driver.
	Flushes   uint64
	FUAWrites uint64

	// BadCompletions counts driver completions with unknown or reused
	// tags — a confused or malicious driver, dropped and counted.
	BadCompletions uint64

	// lat holds per-queue end-to-end latency histograms (dispatch →
	// completion delivery), always on.
	lat []trace.Hist

	// Flight is the device's flight recorder (shared with its supervisor
	// when supervised, nil otherwise). The block core records the
	// park/adopt/replay/drain legs of a recovery into it.
	Flight *trace.Flight

	// drainBelow/drainLeft track the drain leg of a recovery: requests
	// with tags below drainBelow were dispatched to the incarnation that
	// died; when the last of them completes, the recovery has drained.
	drainBelow uint64
	drainLeft  int
}

var _ api.BlockKernel = (*Dev)(nil)
var _ api.RecoverableDevice = (*Dev)(nil)

// NumQueues reports the device's queue-context count.
func (d *Dev) NumQueues() int { return len(d.queues) }

// AttachShadow arms shadow recovery: from now on every dispatched request is
// logged until its completion is delivered. The supervisor attaches the
// shadow when it takes ownership of the device's driver process.
func (d *Dev) AttachShadow(s *shadow.Block) { d.shadow = s }

// Shadow returns the attached shadow (nil when unsupervised).
func (d *Dev) Shadow() *shadow.Block { return d.shadow }

// Epoch reports the device's driver incarnation epoch; it increments on
// every BeginRecovery. Proxies record the epoch they bound at and reject
// their own late completions once it moves on.
func (d *Dev) Epoch() uint64 { return d.epoch }

// Recovering reports whether the device is between driver incarnations.
func (d *Dev) Recovering() bool { return d.recovering }

// QueueEpoch reports queue q's own incarnation epoch; it increments on
// every BeginQueueRecovery. The proxy mirrors it and stamps it on the
// completions it forwards, so a surgically quarantined queue's stale
// completions are told apart from its re-armed incarnation's.
func (d *Dev) QueueEpoch(q int) uint64 { return d.queues[d.clampQ(q)].Epoch }

// QueueRecovering reports whether queue q alone is parked by a surgical
// recovery.
func (d *Dev) QueueRecovering(q int) bool { return d.queues[d.clampQ(q)].recovering }

// Queue returns queue q's context (clamped), for per-queue hooks and stats.
func (d *Dev) Queue(q int) *QueueCtx { return &d.queues[d.clampQ(q)] }

// QueueLatency returns queue q's end-to-end latency histogram (dispatch →
// completion delivery). Snapshot by value for windowed measurements.
func (d *Dev) QueueLatency(q int) *trace.Hist { return &d.lat[d.clampQ(q)] }

func (d *Dev) clampQ(q int) int {
	if q < 0 || q >= len(d.queues) {
		return 0
	}
	return q
}

// Up brings the device online (→ driver Open: queue creation, IRQ).
func (d *Dev) Up() error {
	if d.up {
		return nil
	}
	if err := d.drv.Open(); err != nil {
		return fmt.Errorf("blockdev: open %s: %w", d.Name, err)
	}
	d.up = true
	return nil
}

// Down quiesces the device (→ driver Stop).
func (d *Dev) Down() error {
	if !d.up {
		return nil
	}
	d.up = false
	return d.drv.Stop()
}

// IsUp reports admin state.
func (d *Dev) IsUp() bool { return d.up }

// InFlight reports requests submitted but not yet completed.
func (d *Dev) InFlight() int { return len(d.inflight) }

// QueueForLBA is the submission steering hash: the queue a block lands on
// among nq queues. Fibonacci hashing spreads sequential LBAs uniformly, so
// a striding reader exercises every queue pair — the storage analogue of
// spreading flows by transport-port hash.
func QueueForLBA(lba uint64, nq int) int {
	if nq <= 1 {
		return 0
	}
	return int((lba * 0x9E3779B97F4A7C15 >> 32) % uint64(nq))
}

// ReadAt reads the block at lba, steering by LBA hash; cb receives the
// payload (or an error) when the driver completes.
func (d *Dev) ReadAt(lba uint64, cb func([]byte, error)) error {
	return d.ReadAtQ(lba, QueueForLBA(lba, len(d.queues)), cb)
}

// ReadAtQ reads the block at lba on an explicit queue.
func (d *Dev) ReadAtQ(lba uint64, q int, cb func([]byte, error)) error {
	return d.submit(q, api.BlockRequest{LBA: lba}, cb)
}

// WriteAt writes one block (exactly BlockSize bytes) at lba, steering by
// LBA hash; cb receives nil or an error on completion. On a device with a
// volatile write cache the completion means accepted, not durable — call
// Flush (or use WriteAtFUA) for durability.
func (d *Dev) WriteAt(lba uint64, data []byte, cb func(error)) error {
	return d.writeAtQ(lba, QueueForLBA(lba, len(d.queues)), data, false, cb)
}

// WriteAtQ writes one block at lba on an explicit queue.
func (d *Dev) WriteAtQ(lba uint64, q int, data []byte, cb func(error)) error {
	return d.writeAtQ(lba, q, data, false, cb)
}

// WriteAtFUA writes one block with force-unit-access semantics: the
// completion is delivered only once the payload is durable, past any
// volatile device cache (REQ_FUA).
func (d *Dev) WriteAtFUA(lba uint64, data []byte, cb func(error)) error {
	return d.writeAtQ(lba, QueueForLBA(lba, len(d.queues)), data, true, cb)
}

// WriteAtFUAQ is WriteAtFUA on an explicit queue.
func (d *Dev) WriteAtFUAQ(lba uint64, q int, data []byte, cb func(error)) error {
	return d.writeAtQ(lba, q, data, true, cb)
}

func (d *Dev) writeAtQ(lba uint64, q int, data []byte, fua bool, cb func(error)) error {
	if len(data) != d.Geom.BlockSize {
		return ErrBadSize
	}
	// The block core owns the payload for the request's lifetime, like
	// the page cache owns a bio's pages.
	buf := make([]byte, len(data))
	copy(buf, data)
	d.mgr.Acct.Charge(sim.Copy(len(data)))
	return d.submit(q, api.BlockRequest{Write: true, LBA: lba, Data: buf, FUA: fua},
		func(_ []byte, err error) { cb(err) })
}

// Flush issues a write barrier (REQ_OP_FLUSH): cb runs once every write
// acked before this call is durable on media. Ordering is strict — new
// submissions park behind the barrier, and the flush command reaches the
// driver only after every previously dispatched request (on every queue)
// has completed, so a driver cannot be handed a flush while writes it has
// not acked are still in flight. Flushes issued while one is active queue
// behind it in order.
func (d *Dev) Flush(cb func(error)) error {
	if !d.up {
		return ErrDown
	}
	d.mgr.Acct.Charge(CostSubmitPath)
	d.flushQ = append(d.flushQ, &flushOp{cb: cb})
	d.pumpBarrier()
	return nil
}

// FlushPending reports whether a barrier is active or queued (tests).
func (d *Dev) FlushPending() bool { return d.barrier != nil || len(d.flushQ) > 0 }

// pumpBarrier advances the barrier state machine: activate the next queued
// flush, and once the in-flight table is drained hand the flush itself to
// the driver on queue 0 under its own tag (logged in the shadow like any
// request, so a driver death mid-barrier replays it in order).
func (d *Dev) pumpBarrier() {
	if d.recovering {
		return
	}
	if d.barrier == nil {
		if len(d.flushQ) == 0 {
			return
		}
		d.barrier = d.flushQ[0]
		d.flushQ = d.flushQ[1:]
	}
	b := d.barrier
	if b.dispatched || len(d.inflight) != 0 {
		return
	}
	b.dispatched = true
	if !d.dispatch(0, api.BlockRequest{Flush: true},
		func(_ []byte, err error) { d.finishBarrier(b, err) }) {
		// The driver refused the flush (queue full): retried on the next
		// wake.
		b.dispatched = false
	}
}

// finishBarrier completes one barrier: deliver the verdict, release the
// parked queues, then start any queued successor.
func (d *Dev) finishBarrier(b *flushOp, err error) {
	if d.barrier == b {
		d.barrier = nil
	}
	if err == nil {
		d.Flushes++
	}
	b.cb(err)
	if !d.up || d.recovering {
		return
	}
	for q := range d.queues {
		d.WakeQueueQ(q)
	}
	d.pumpBarrier()
}

// submit validates, tags and dispatches one request; a stalled or full
// hardware queue — a device whose driver is being restarted, or one with a
// flush barrier in flight — parks it in that queue's software queue.
func (d *Dev) submit(q int, req api.BlockRequest, cb func([]byte, error)) error {
	if !d.up {
		return ErrDown
	}
	if req.LBA >= d.Geom.Blocks {
		return ErrOutOfRange
	}
	q = d.clampQ(q)
	qc := &d.queues[q]
	d.mgr.Acct.Charge(CostSubmitPath)
	if qc.stalled || qc.recovering || d.recovering || d.barrier != nil {
		if len(qc.waiting) >= MaxQueuedPerQueue {
			return ErrCongested
		}
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
		return nil
	}
	if !d.dispatch(q, req, cb) {
		qc.stalled = true
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
	}
	return nil
}

// dispatch hands one request to the driver; it reports false when the
// hardware queue refused it (park and stall).
func (d *Dev) dispatch(q int, req api.BlockRequest, cb func([]byte, error)) bool {
	qc := &d.queues[q]
	req.Tag = d.nextTag
	d.nextTag++
	d.inflight[req.Tag] = &request{q: q, write: req.Write, flush: req.Flush,
		at: d.mgr.Loop.Now(), cb: cb}
	d.mgr.Trace.Event(trace.ClassBlk, q, req.Tag, trace.HopSubmit)
	if err := d.drv.Submit(q, req); err != nil {
		delete(d.inflight, req.Tag)
		return false
	}
	if d.shadow != nil {
		d.shadow.RecordSubmit(q, req)
	}
	switch {
	case req.Flush:
		// Barriers are counted on completion (d.Flushes), not per queue.
	case req.Write:
		qc.Writes++
		if req.FUA {
			d.FUAWrites++
		}
	default:
		qc.Reads++
	}
	return true
}

// --- api.BlockKernel (driver → kernel) ---------------------------------------

// Complete implements api.BlockKernel: request tag finished on queue q. For
// trusted in-kernel drivers data is the driver's own buffer; the SUD proxy
// calls the same entry after validating and guard-copying the untrusted
// reference.
func (d *Dev) Complete(q int, tag uint64, err error, data []byte) {
	r, ok := d.inflight[tag]
	if !ok {
		d.BadCompletions++
		return
	}
	delete(d.inflight, tag)
	if d.shadow != nil {
		d.shadow.RecordComplete(tag)
	}
	qc := &d.queues[d.clampQ(q)]
	qc.Completions++
	d.mgr.Acct.Charge(CostCompletePath)
	d.lat[d.clampQ(q)].Record(d.mgr.Loop.Now() - r.at)
	d.mgr.Trace.Event(trace.ClassBlk, q, tag, trace.HopComplete)
	if d.drainLeft > 0 && tag < d.drainBelow {
		d.drainLeft--
		if d.drainLeft == 0 {
			d.Flight.Recordf(trace.FDrain, "%s epoch %d: all pre-death requests completed",
				d.Name, d.epoch)
		}
	}
	// Surgical recoveries drain per queue: the owning queue's context, not
	// the one the driver claims to complete on, tracks its own leg.
	if rqc := &d.queues[r.q]; rqc.drainLeft > 0 && tag < rqc.drainBelow {
		rqc.drainLeft--
		if rqc.drainLeft == 0 {
			d.Flight.Recordf(trace.FDrain, "%s q%d epoch %d: all pre-quarantine requests completed",
				d.Name, r.q, rqc.Epoch)
		}
	}
	if err == nil && !r.write && !r.flush && len(data) != d.Geom.BlockSize {
		err = fmt.Errorf("blockdev: short read (%d bytes)", len(data))
	}
	if err != nil {
		qc.Errors++
		r.cb(nil, err)
	} else {
		r.cb(data, nil)
	}
	// The in-flight table draining may be what an active barrier is
	// waiting for.
	if d.barrier != nil && !d.barrier.dispatched {
		d.pumpBarrier()
	}
}

// WakeQueueQ implements api.BlockKernel: queue q's hardware queue regained
// space; drain its software queue and notify the submitter. Replays left
// over from a recovery go first — they carry the oldest tags and must reach
// the restarted driver before any parked request that was submitted after
// them.
func (d *Dev) WakeQueueQ(q int) {
	qc := &d.queues[d.clampQ(q)]
	if d.recovering || qc.recovering {
		// A wake between driver incarnations (a stale proxy, or a death
		// racing the doorbell) must not release parked requests into a
		// driver that no longer exists — nor into a surgically quarantined
		// queue whose DMA sub-domain is revoked.
		return
	}
	if !d.drainReplay(qc.ID) {
		qc.stalled = true
		return
	}
	if d.barrier != nil {
		// Parked submissions stay parked behind the in-flight barrier;
		// the wake may be the headroom a refused flush dispatch needed.
		d.pumpBarrier()
		return
	}
	qc.stalled = false
	for len(qc.waiting) > 0 {
		w := qc.waiting[0]
		if !d.dispatch(qc.ID, w.req, w.cb) {
			qc.stalled = true
			return
		}
		qc.waiting = qc.waiting[1:]
	}
	if h := qc.OnWake; h != nil {
		h()
		return
	}
	if d.OnWake != nil {
		d.OnWake()
	}
}

// drainReplay feeds queue q's remaining replay schedule to the (restarted)
// driver in original submission order, under the original tags — their
// callbacks are still tabled in d.inflight. It reports false if the driver
// refused a replay (queue full: continue on the next wake).
func (d *Dev) drainReplay(q int) bool {
	if d.replay == nil || q >= len(d.replay) {
		return true
	}
	for len(d.replay[q]) > 0 {
		p := d.replay[q][0]
		d.mgr.Acct.Charge(CostSubmitPath)
		if err := d.drv.Submit(q, p.Req); err != nil {
			return false
		}
		d.replay[q] = d.replay[q][1:]
		d.queues[q].Replays++
		if d.shadow != nil {
			d.shadow.Replayed++
		}
	}
	return true
}

// CompleteRecovery finishes a shadow recovery after the restarted driver
// has adopted the device: bring-up is replayed (the driver's Open — queue
// creation, IRQ), the shadow's in-flight log becomes the per-queue replay
// schedule, and every queue is released — replays first, then parked
// submissions. It returns the number of requests scheduled for replay. On
// an Open failure the device stays recovering (parked requests intact), so
// a second restart can try again.
func (d *Dev) CompleteRecovery() (int, error) {
	if !d.recovering {
		return 0, nil
	}
	if d.up {
		if err := d.drv.Open(); err != nil {
			return 0, fmt.Errorf("blockdev: recovery open %s: %w", d.Name, err)
		}
	}
	n := 0
	if d.shadow != nil {
		d.replay = d.shadow.PendingByQueue(len(d.queues))
		for q := range d.replay {
			n += len(d.replay[q])
		}
	}
	// Everything tabled right now was dispatched to the incarnation that
	// died; when the last of them completes (replayed or raced), the
	// recovery has drained.
	d.drainBelow = d.nextTag
	d.drainLeft = len(d.inflight)
	d.Flight.Recordf(trace.FReplay, "%s epoch %d: %d logged requests scheduled for replay",
		d.Name, d.epoch, n)
	if d.drainLeft == 0 {
		d.Flight.Recordf(trace.FDrain, "%s epoch %d: nothing was in flight at death",
			d.Name, d.epoch)
	}
	d.recovering = false
	for q := range d.queues {
		d.WakeQueueQ(q)
	}
	// A barrier that was active (or queued) when the driver died resumes:
	// replayed requests are back in flight, and the flush dispatches once
	// they drain — kill -9 plus respawn cannot reorder acked-durable
	// writes around the barrier.
	d.pumpBarrier()
	return n, nil
}

// BeginQueueRecovery parks exactly one queue: the supervisor detected DMA
// faults attributable to queue q and revoked that queue's sub-domain, while
// the driver process — and every sibling queue — stays up. The queue's own
// epoch is bumped so completions the proxy still stamps with the dead
// incarnation are rejected, its in-flight requests stay tabled awaiting
// replay, and new submissions steered onto it park in its software queue.
// Idempotent: a second quarantine of an already-parked queue changes
// nothing, and a device-wide recovery in progress subsumes the surgical one.
func (d *Dev) BeginQueueRecovery(q int) {
	if d.recovering {
		return
	}
	qc := &d.queues[d.clampQ(q)]
	if qc.recovering {
		return
	}
	qc.recovering = true
	qc.stalled = true
	qc.Epoch++
	qc.drainBelow = d.nextTag
	qc.drainLeft = 0
	for _, r := range d.inflight {
		if r.q == qc.ID {
			qc.drainLeft++
		}
	}
	d.Flight.Recordf(trace.FPark, "%s q%d epoch %d: %d in flight, %d queued parked",
		d.Name, qc.ID, qc.Epoch, qc.drainLeft, len(qc.waiting))
}

// CompleteQueueRecovery finishes a surgical recovery: the supervisor
// re-armed queue q's DMA sub-domain and resynced the proxy at the queue's
// new epoch, so the shadow's unfinished requests for this one queue become
// its replay schedule — original submission order, original tags, their
// callbacks still tabled — and the queue is released. Siblings never
// noticed. It returns the number of requests scheduled for replay; it is an
// error while a device-wide recovery is in progress (the full replay owns
// every queue).
func (d *Dev) CompleteQueueRecovery(q int) (int, error) {
	if d.recovering {
		return 0, fmt.Errorf("blockdev: %s is in device-wide recovery", d.Name)
	}
	qc := &d.queues[d.clampQ(q)]
	if !qc.recovering {
		return 0, nil
	}
	n := 0
	if d.shadow != nil {
		if d.replay == nil {
			d.replay = make([][]shadow.PendingBlock, len(d.queues))
		}
		d.replay[qc.ID] = d.shadow.PendingForQueue(qc.ID, len(d.queues))
		n = len(d.replay[qc.ID])
	}
	d.Flight.Recordf(trace.FReplay, "%s q%d epoch %d: %d logged requests scheduled for replay",
		d.Name, qc.ID, qc.Epoch, n)
	if qc.drainLeft == 0 {
		d.Flight.Recordf(trace.FDrain, "%s q%d epoch %d: nothing was in flight at quarantine",
			d.Name, qc.ID, qc.Epoch)
	}
	qc.recovering = false
	d.WakeQueueQ(qc.ID)
	d.pumpBarrier()
	return n, nil
}
