// Package blockdev is the kernel block layer: the trusted core that owns
// block devices registered by drivers (RegisterBlockDev), splits each
// device's submission state into per-queue contexts — one per hardware
// queue pair the driver exposes — and offers single-block ReadAt/WriteAt
// with software request queues and per-queue stall/wake, the blk-mq shape
// of netstack's per-queue interface contexts. It trusts nothing about the
// driver's liveness: a full hardware queue parks requests in that queue's
// software queue only, and completions are matched by kernel-allocated tag,
// so a driver cannot complete a request it was never given.
package blockdev

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

// Path costs of the block core itself, per request (see
// internal/sim/costs.go for the calibration rationale).
const (
	// CostSubmitPath is request allocation, tag assignment and queue
	// bookkeeping on submission.
	CostSubmitPath sim.Duration = 1000
	// CostCompletePath is completion matching and callback dispatch.
	CostCompletePath sim.Duration = 800
)

// MaxQueuedPerQueue bounds one queue context's software request queue; past
// it submissions fail with ErrCongested and the caller must back off, so a
// stalled hardware queue cannot pin unbounded kernel memory.
const MaxQueuedPerQueue = 256

// Errors returned by the submission path.
var (
	ErrNameTaken  = fmt.Errorf("blockdev: device name already registered")
	ErrOutOfRange = fmt.Errorf("blockdev: LBA out of range")
	ErrBadSize    = fmt.Errorf("blockdev: payload is not one block")
	ErrDown       = fmt.Errorf("blockdev: device is down")
	ErrCongested  = fmt.Errorf("blockdev: request queue full")
)

// Manager is the kernel's block core.
type Manager struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount // the kernel CPU account

	devs map[string]*Dev
}

// New returns an empty block core charging CPU to acct.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Manager {
	return &Manager{Loop: loop, Acct: acct, devs: make(map[string]*Dev)}
}

// Register adds a block device for a driver. Names must be unique (proxy
// drivers retry with the kernel's name template, like netdevs).
func (m *Manager) Register(name string, geom api.BlockGeometry, drv api.BlockDevice) (*Dev, error) {
	if _, dup := m.devs[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	if geom.BlockSize <= 0 || geom.Blocks == 0 {
		return nil, fmt.Errorf("blockdev: bad geometry %+v", geom)
	}
	d := &Dev{Name: name, Geom: geom, mgr: m, drv: drv, inflight: make(map[uint64]*request)}
	nq := drv.Queues()
	if nq < 1 {
		nq = 1
	}
	d.queues = make([]QueueCtx, nq)
	for q := range d.queues {
		d.queues[q].ID = q
	}
	m.devs[name] = d
	return d, nil
}

// Unregister removes a device (driver removal / process death). Requests
// still in flight complete with ErrDown so no caller waits forever on a
// dead driver.
func (m *Manager) Unregister(name string) {
	d, ok := m.devs[name]
	if !ok {
		return
	}
	delete(m.devs, name)
	d.up = false
	for tag, r := range d.inflight {
		delete(d.inflight, tag)
		r.cb(nil, ErrDown)
	}
	for q := range d.queues {
		qc := &d.queues[q]
		for _, w := range qc.waiting {
			w.cb(nil, ErrDown)
		}
		qc.waiting = nil
	}
}

// Dev looks up a device by name.
func (m *Manager) Dev(name string) (*Dev, error) {
	d, ok := m.devs[name]
	if !ok {
		return nil, fmt.Errorf("blockdev: no device %q", name)
	}
	return d, nil
}

// Names lists registered devices.
func (m *Manager) Names() []string {
	var out []string
	for n := range m.devs {
		out = append(out, n)
	}
	return out
}

// QueueCtx is one per-queue context of a block device: its own stall state,
// its own software request queue, and its own counters. Splitting this
// state per queue is what lets one full hardware queue park only the
// requests steered onto it — sibling queues keep submitting.
type QueueCtx struct {
	ID int

	stalled bool
	waiting []queued

	// Per-queue traffic counters.
	Reads, Writes, Completions, Errors uint64

	// OnWake, if set, runs when this queue is woken; when unset the
	// device-level OnWake hook fires instead.
	OnWake func()
}

// Stalled reports the queue's backpressure state (tests and pacing logic).
func (qc *QueueCtx) Stalled() bool { return qc.stalled }

// Waiting reports the software queue depth.
func (qc *QueueCtx) Waiting() int { return len(qc.waiting) }

// queued is one parked submission.
type queued struct {
	req api.BlockRequest
	cb  func([]byte, error)
}

// request is one in-flight request awaiting completion.
type request struct {
	q     int
	write bool
	cb    func([]byte, error)
}

// Dev is one registered block device. It implements api.BlockKernel — it is
// what RegisterBlockDev hands back to the driver.
type Dev struct {
	Name string
	Geom api.BlockGeometry

	mgr *Manager
	drv api.BlockDevice
	up  bool

	queues   []QueueCtx
	inflight map[uint64]*request
	nextTag  uint64

	// OnWake, if set, runs when the driver wakes a queue with no
	// queue-level hook (backpressure release for the benchmark loop).
	OnWake func()

	// BadCompletions counts driver completions with unknown or reused
	// tags — a confused or malicious driver, dropped and counted.
	BadCompletions uint64
}

var _ api.BlockKernel = (*Dev)(nil)

// NumQueues reports the device's queue-context count.
func (d *Dev) NumQueues() int { return len(d.queues) }

// Queue returns queue q's context (clamped), for per-queue hooks and stats.
func (d *Dev) Queue(q int) *QueueCtx { return &d.queues[d.clampQ(q)] }

func (d *Dev) clampQ(q int) int {
	if q < 0 || q >= len(d.queues) {
		return 0
	}
	return q
}

// Up brings the device online (→ driver Open: queue creation, IRQ).
func (d *Dev) Up() error {
	if d.up {
		return nil
	}
	if err := d.drv.Open(); err != nil {
		return fmt.Errorf("blockdev: open %s: %w", d.Name, err)
	}
	d.up = true
	return nil
}

// Down quiesces the device (→ driver Stop).
func (d *Dev) Down() error {
	if !d.up {
		return nil
	}
	d.up = false
	return d.drv.Stop()
}

// IsUp reports admin state.
func (d *Dev) IsUp() bool { return d.up }

// InFlight reports requests submitted but not yet completed.
func (d *Dev) InFlight() int { return len(d.inflight) }

// QueueForLBA is the submission steering hash: the queue a block lands on
// among nq queues. Fibonacci hashing spreads sequential LBAs uniformly, so
// a striding reader exercises every queue pair — the storage analogue of
// spreading flows by transport-port hash.
func QueueForLBA(lba uint64, nq int) int {
	if nq <= 1 {
		return 0
	}
	return int((lba * 0x9E3779B97F4A7C15 >> 32) % uint64(nq))
}

// ReadAt reads the block at lba, steering by LBA hash; cb receives the
// payload (or an error) when the driver completes.
func (d *Dev) ReadAt(lba uint64, cb func([]byte, error)) error {
	return d.ReadAtQ(lba, QueueForLBA(lba, len(d.queues)), cb)
}

// ReadAtQ reads the block at lba on an explicit queue.
func (d *Dev) ReadAtQ(lba uint64, q int, cb func([]byte, error)) error {
	return d.submit(q, api.BlockRequest{LBA: lba}, cb)
}

// WriteAt writes one block (exactly BlockSize bytes) at lba, steering by
// LBA hash; cb receives nil or an error on completion.
func (d *Dev) WriteAt(lba uint64, data []byte, cb func(error)) error {
	return d.WriteAtQ(lba, QueueForLBA(lba, len(d.queues)), data, cb)
}

// WriteAtQ writes one block at lba on an explicit queue.
func (d *Dev) WriteAtQ(lba uint64, q int, data []byte, cb func(error)) error {
	if len(data) != d.Geom.BlockSize {
		return ErrBadSize
	}
	// The block core owns the payload for the request's lifetime, like
	// the page cache owns a bio's pages.
	buf := make([]byte, len(data))
	copy(buf, data)
	d.mgr.Acct.Charge(sim.Copy(len(data)))
	return d.submit(q, api.BlockRequest{Write: true, LBA: lba, Data: buf},
		func(_ []byte, err error) { cb(err) })
}

// submit validates, tags and dispatches one request; a stalled or full
// hardware queue parks it in that queue's software queue.
func (d *Dev) submit(q int, req api.BlockRequest, cb func([]byte, error)) error {
	if !d.up {
		return ErrDown
	}
	if req.LBA >= d.Geom.Blocks {
		return ErrOutOfRange
	}
	q = d.clampQ(q)
	qc := &d.queues[q]
	d.mgr.Acct.Charge(CostSubmitPath)
	if qc.stalled {
		if len(qc.waiting) >= MaxQueuedPerQueue {
			return ErrCongested
		}
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
		return nil
	}
	if !d.dispatch(q, req, cb) {
		qc.stalled = true
		qc.waiting = append(qc.waiting, queued{req: req, cb: cb})
	}
	return nil
}

// dispatch hands one request to the driver; it reports false when the
// hardware queue refused it (park and stall).
func (d *Dev) dispatch(q int, req api.BlockRequest, cb func([]byte, error)) bool {
	qc := &d.queues[q]
	req.Tag = d.nextTag
	d.nextTag++
	d.inflight[req.Tag] = &request{q: q, write: req.Write, cb: cb}
	if err := d.drv.Submit(q, req); err != nil {
		delete(d.inflight, req.Tag)
		return false
	}
	if req.Write {
		qc.Writes++
	} else {
		qc.Reads++
	}
	return true
}

// --- api.BlockKernel (driver → kernel) ---------------------------------------

// Complete implements api.BlockKernel: request tag finished on queue q. For
// trusted in-kernel drivers data is the driver's own buffer; the SUD proxy
// calls the same entry after validating and guard-copying the untrusted
// reference.
func (d *Dev) Complete(q int, tag uint64, err error, data []byte) {
	r, ok := d.inflight[tag]
	if !ok {
		d.BadCompletions++
		return
	}
	delete(d.inflight, tag)
	qc := &d.queues[d.clampQ(q)]
	qc.Completions++
	d.mgr.Acct.Charge(CostCompletePath)
	if err == nil && !r.write && len(data) != d.Geom.BlockSize {
		err = fmt.Errorf("blockdev: short read (%d bytes)", len(data))
	}
	if err != nil {
		qc.Errors++
		r.cb(nil, err)
		return
	}
	r.cb(data, nil)
}

// WakeQueueQ implements api.BlockKernel: queue q's hardware queue regained
// space; drain its software queue and notify the submitter.
func (d *Dev) WakeQueueQ(q int) {
	qc := &d.queues[d.clampQ(q)]
	qc.stalled = false
	for len(qc.waiting) > 0 {
		w := qc.waiting[0]
		if !d.dispatch(qc.ID, w.req, w.cb) {
			qc.stalled = true
			return
		}
		qc.waiting = qc.waiting[1:]
	}
	if h := qc.OnWake; h != nil {
		h()
		return
	}
	if d.OnWake != nil {
		d.OnWake()
	}
}
