package blockdev

import (
	"errors"
	"testing"

	"sud/internal/drivers/api"
	"sud/internal/kernel/shadow"
)

// startRecoverable registers a shadowed fake driver and brings it up.
func startRecoverable(t *testing.T, m *Manager, queues, limit int) (*Dev, *fakeDrv) {
	t.Helper()
	f := newFake(queues, limit)
	d, err := m.Register("d0", geom(), f)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachShadow(shadow.NewBlock(d.Geom))
	if err := d.Up(); err != nil {
		t.Fatal(err)
	}
	return d, f
}

// TestRecoveryParksReplaysAndAdopts is the shadow protocol end to end at the
// block-core level: in-flight requests survive the driver's death, new
// submissions park instead of failing, the restarted driver adopts the same
// Dev object, and replay re-submits the log in order under the original
// tags before the parked work drains.
func TestRecoveryParksReplaysAndAdopts(t *testing.T) {
	m := newMgr()
	d, f1 := startRecoverable(t, m, 1, 16)

	results := map[uint64]error{} // LBA → completion error (sentinel = pending)
	pending := errors.New("pending")
	issue := func(lba uint64) {
		results[lba] = pending
		if err := d.ReadAtQ(lba, 0, func(_ []byte, err error) { results[lba] = err }); err != nil {
			t.Fatalf("submit lba %d: %v", lba, err)
		}
	}
	issue(1)
	issue(2)
	issue(3)
	if len(f1.pending[0]) != 3 {
		t.Fatalf("driver holds %d requests", len(f1.pending[0]))
	}

	// Driver death under supervision.
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if !d.Recovering() || d.Epoch() != 1 {
		t.Fatalf("recovering=%v epoch=%d", d.Recovering(), d.Epoch())
	}
	// In-flight requests are parked, not failed.
	for lba, err := range results {
		if err != pending {
			t.Fatalf("lba %d completed during recovery: %v", lba, err)
		}
	}
	// New submissions park too.
	issue(4)
	if d.Queue(0).Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1 parked", d.Queue(0).Waiting())
	}

	// The restarted driver registers the same name+geometry and adopts.
	f2 := newFake(1, 16)
	d2, err := m.Register("d0", geom(), f2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Fatal("registration did not adopt the recovering device")
	}
	n, err := d.CompleteRecovery()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d, want 3", n)
	}
	if !f2.opened {
		t.Fatal("bring-up not replayed to the restarted driver")
	}
	// Replays come first, in original order and under the original tags,
	// then the parked request.
	if len(f2.pending[0]) != 4 {
		t.Fatalf("restarted driver holds %d requests, want 4", len(f2.pending[0]))
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if f2.pending[0][i].LBA != want {
			t.Fatalf("replay order: slot %d is LBA %d, want %d", i, f2.pending[0][i].LBA, want)
		}
		if want <= 3 && f2.pending[0][i].Tag != uint64(want-1) {
			t.Fatalf("replayed LBA %d under tag %d, want original %d", want, f2.pending[0][i].Tag, want-1)
		}
	}
	if d.Queue(0).Replays != 3 {
		t.Fatalf("Replays = %d", d.Queue(0).Replays)
	}
	// Completing the replayed tags delivers to the original callbacks.
	for _, req := range f2.pending[0] {
		d.Complete(0, req.Tag, nil, make([]byte, d.Geom.BlockSize))
	}
	for lba, err := range results {
		if err != nil {
			t.Fatalf("lba %d: %v", lba, err)
		}
	}
	if d.Shadow().Pending() != 0 {
		t.Fatalf("shadow log holds %d entries after completion", d.Shadow().Pending())
	}
}

// TestRecoveryReplayContinuesOnWake covers a restarted driver whose queue
// is too small to take the whole replay at once: the remainder must go out
// on the driver's wake, still ahead of parked submissions.
func TestRecoveryReplayContinuesOnWake(t *testing.T) {
	m := newMgr()
	d, _ := startRecoverable(t, m, 1, 16)
	for lba := uint64(1); lba <= 6; lba++ {
		if err := d.ReadAtQ(lba, 0, func(_ []byte, _ error) {}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAtQ(7, 0, func(_ []byte, _ error) {}); err != nil {
		t.Fatal(err) // parks behind the replay
	}
	f2 := newFake(1, 2) // accepts only two requests before reporting full
	if _, err := m.Register("d0", geom(), f2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRecovery(); err != nil {
		t.Fatal(err)
	}
	if len(f2.pending[0]) != 2 || !d.Queue(0).Stalled() {
		t.Fatalf("partial replay: %d submitted, stalled=%v", len(f2.pending[0]), d.Queue(0).Stalled())
	}
	// The driver drains and wakes; replay resumes before the parked read.
	f2.pending[0], f2.limit = nil, 16
	d.WakeQueueQ(0)
	want := []uint64{3, 4, 5, 6, 7}
	if len(f2.pending[0]) != len(want) {
		t.Fatalf("wake drained %d requests, want %d", len(f2.pending[0]), len(want))
	}
	for i, lba := range want {
		if f2.pending[0][i].LBA != lba {
			t.Fatalf("slot %d is LBA %d, want %d", i, f2.pending[0][i].LBA, lba)
		}
	}
}

// TestUnregisterWhileRecovering: pulling the device mid-recovery must fail
// every tabled and parked request with ErrDown, drop the shadow log, and
// leave nothing adoptable.
func TestUnregisterWhileRecovering(t *testing.T) {
	m := newMgr()
	d, _ := startRecoverable(t, m, 1, 16)
	var errs []error
	for lba := uint64(1); lba <= 3; lba++ {
		if err := d.ReadAtQ(lba, 0, func(_ []byte, err error) { errs = append(errs, err) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAtQ(4, 0, func(_ []byte, err error) { errs = append(errs, err) }); err != nil {
		t.Fatal(err)
	}
	m.Unregister("d0")
	if len(errs) != 4 {
		t.Fatalf("%d callbacks fired, want 4", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrDown) {
			t.Fatalf("completion error %v, want ErrDown", err)
		}
	}
	if d.Shadow().Pending() != 0 {
		t.Fatal("shadow log survived unregister")
	}
	// A later registration with the same name is a fresh device, not an
	// adoption of the dead one.
	f3 := newFake(1, 16)
	d3, err := m.Register("d0", geom(), f3)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d {
		t.Fatal("unregistered device was adopted")
	}
}

// TestAdoptionRequiresMatchingGeometry: a restarted driver reporting
// different media must not inherit the request log.
func TestAdoptionRequiresMatchingGeometry(t *testing.T) {
	m := newMgr()
	d, _ := startRecoverable(t, m, 1, 16)
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	other := api.BlockGeometry{BlockSize: 4096, Blocks: 8}
	if _, err := m.Register("d0", other, newFake(1, 16)); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("mismatched geometry register: %v, want name-taken refusal", err)
	}
	// The matching driver still adopts afterwards.
	d2, err := m.Register("d0", geom(), newFake(1, 16))
	if err != nil || d2 != d {
		t.Fatalf("adopt after refusal: %v (same=%v)", err, d2 == d)
	}
}

// TestDoubleDeathBeforeAdoption: a second BeginRecovery (the restarted
// process dying before it registered) is idempotent on parking but the
// device stays adoptable; epoch moves once per death that found the device
// live.
func TestDoubleDeathBeforeAdoption(t *testing.T) {
	m := newMgr()
	d, _ := startRecoverable(t, m, 1, 16)
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch = %d after back-to-back deaths, want 1", d.Epoch())
	}
	if _, err := m.Register("d0", geom(), newFake(1, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CompleteRecovery(); err != nil {
		t.Fatal(err)
	}
	// A death after adoption is a fresh recovery: epoch moves again.
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", d.Epoch())
	}
}

// TestDeathAfterAdoptionBeforeRecoveryCompletes: the adopted incarnation
// dies (or fails its recovery open) while the device is still recovering.
// The next BeginRecovery must re-enter the adoption table and bump the
// epoch again — otherwise the device would be permanently un-adoptable and
// the dead incarnation's proxy would keep passing the epoch check.
func TestDeathAfterAdoptionBeforeRecoveryCompletes(t *testing.T) {
	m := newMgr()
	d, _ := startRecoverable(t, m, 1, 16)
	done := false
	if err := d.ReadAtQ(1, 0, func(_ []byte, err error) { done = err == nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register("d0", geom(), newFake(1, 16)); err != nil {
		t.Fatal(err) // generation 1 adopts...
	}
	// ...and dies before CompleteRecovery ran.
	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch = %d after post-adoption death, want 2", d.Epoch())
	}
	// Generation 2 must still be able to adopt and finish the recovery.
	f3 := newFake(1, 16)
	d3, err := m.Register("d0", geom(), f3)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d {
		t.Fatal("device not re-adoptable after a post-adoption death")
	}
	if n, err := d.CompleteRecovery(); err != nil || n != 1 {
		t.Fatalf("replay after second adoption: n=%d err=%v", n, err)
	}
	d.Complete(0, f3.pending[0][0].Tag, nil, make([]byte, d.Geom.BlockSize))
	if !done {
		t.Fatal("request did not complete across two incarnations' deaths")
	}
}
