package blockdev

import (
	"errors"
	"testing"

	"sud/internal/kernel/shadow"
)

// completeOne completes the oldest pending request on queue q of the fake
// driver; it reports false when the queue is empty. Completing may cause
// the block core to dispatch follow-on work into f.pending (a released
// barrier, a drained parked request) — that work is left pending, so tests
// can observe intermediate states.
func completeOne(d *Dev, f *fakeDrv, q int) bool {
	if len(f.pending[q]) == 0 {
		return false
	}
	req := f.pending[q][0]
	f.pending[q] = f.pending[q][1:]
	var data []byte
	if !req.Write && !req.Flush {
		data = make([]byte, d.Geom.BlockSize)
	}
	d.Complete(q, req.Tag, nil, data)
	return true
}

// completeAll keeps completing until every queue is empty.
func completeAll(d *Dev, f *fakeDrv) {
	for again := true; again; {
		again = false
		for q := range f.pending {
			if completeOne(d, f, q) {
				again = true
			}
		}
	}
}

func TestFlushWaitsForInflightThenDispatches(t *testing.T) {
	m := newMgr()
	f := newFake(2, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	// Two writes in flight on different queues.
	buf := make([]byte, 512)
	if err := d.WriteAtQ(1, 0, buf, func(error) {}); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAtQ(2, 1, buf, func(error) {}); err != nil {
		t.Fatal(err)
	}

	flushed := false
	if err := d.Flush(func(err error) {
		if err != nil {
			t.Fatalf("flush: %v", err)
		}
		flushed = true
	}); err != nil {
		t.Fatal(err)
	}
	// The barrier must not reach the driver while the writes are in
	// flight on ANY queue.
	for q := range f.pending {
		for _, req := range f.pending[q] {
			if req.Flush {
				t.Fatal("flush dispatched with prior writes outstanding")
			}
		}
	}
	// New submissions park behind the barrier.
	if err := d.ReadAtQ(3, 0, func([]byte, error) {}); err != nil {
		t.Fatal(err)
	}
	if got := len(f.pending[0]); got != 1 {
		t.Fatalf("submission crossed an active barrier (queue 0 holds %d)", got)
	}

	// Completing the writes releases the flush to the driver...
	completeOne(d, f, 0)
	completeOne(d, f, 1)
	if len(f.pending[0]) != 1 || !f.pending[0][0].Flush {
		t.Fatalf("flush not dispatched after drain: %+v", f.pending[0])
	}
	if flushed {
		t.Fatal("flush completed before the driver acked it")
	}
	// ...and the flush's completion finishes the barrier and drains the
	// parked read.
	completeOne(d, f, 0)
	if !flushed {
		t.Fatal("flush callback never ran")
	}
	if d.Flushes != 1 {
		t.Fatalf("Flushes = %d", d.Flushes)
	}
	if len(f.pending[0]) != 1 || f.pending[0][0].Write || f.pending[0][0].Flush {
		t.Fatalf("parked read not released after barrier: %+v", f.pending[0])
	}
}

func TestFlushesQueueInOrder(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	var order []int
	for i := 0; i < 3; i++ {
		i := i
		if err := d.Flush(func(err error) {
			if err != nil {
				t.Fatalf("flush %d: %v", i, err)
			}
			order = append(order, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for rounds := 0; rounds < 10 && len(order) < 3; rounds++ {
		completeAll(d, f)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("barrier order = %v", order)
	}
	if d.Flushes != 3 {
		t.Fatalf("Flushes = %d", d.Flushes)
	}
}

func TestWriteAtFUACarriesFlag(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	done := false
	if err := d.WriteAtFUA(9, make([]byte, 512), func(err error) {
		if err != nil {
			t.Fatalf("fua write: %v", err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if len(f.pending[0]) != 1 || !f.pending[0][0].FUA || !f.pending[0][0].Write {
		t.Fatalf("driver saw %+v", f.pending[0])
	}
	if d.FUAWrites != 1 {
		t.Fatalf("FUAWrites = %d", d.FUAWrites)
	}
	completeAll(d, f)
	if !done {
		t.Fatal("FUA write never completed")
	}
}

func TestFlushRefusedByDriverRetriesOnWake(t *testing.T) {
	m := newMgr()
	f := newFake(1, 0) // driver refuses everything
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	flushed := false
	if err := d.Flush(func(err error) { flushed = err == nil }); err != nil {
		t.Fatal(err)
	}
	if len(f.pending[0]) != 0 {
		t.Fatal("refused flush recorded as dispatched")
	}
	f.limit = 8
	d.WakeQueueQ(0)
	if len(f.pending[0]) != 1 || !f.pending[0][0].Flush {
		t.Fatalf("flush not retried on wake: %+v", f.pending[0])
	}
	completeAll(d, f)
	if !flushed {
		t.Fatal("flush never completed")
	}
}

func TestFlushOnDownDeviceFails(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	if err := d.Flush(func(error) {}); !errors.Is(err, ErrDown) {
		t.Fatalf("flush on down device: %v", err)
	}
}

func TestUnregisterFailsBarriers(t *testing.T) {
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()

	// One dispatched barrier, one queued behind it, one parked write.
	var errs []error
	_ = d.Flush(func(err error) { errs = append(errs, err) })
	_ = d.Flush(func(err error) { errs = append(errs, err) })
	var werr error
	wran := false
	_ = d.WriteAtQ(1, 0, make([]byte, 512), func(err error) { werr, wran = err, true })

	m.Unregister("d0")
	if len(errs) != 2 || !errors.Is(errs[0], ErrDown) || !errors.Is(errs[1], ErrDown) {
		t.Fatalf("barrier errors = %v", errs)
	}
	if !wran || !errors.Is(werr, ErrDown) {
		t.Fatalf("parked write: ran=%v err=%v", wran, werr)
	}
}

func TestBarrierSurvivesRecovery(t *testing.T) {
	// A driver death with a barrier waiting on in-flight writes: the
	// writes replay into the restarted driver, and the flush dispatches
	// only after the replays complete — kill plus respawn cannot reorder
	// acked-durable writes around the barrier.
	m := newMgr()
	f := newFake(1, 8)
	d, _ := m.Register("d0", geom(), f)
	_ = d.Up()
	d.AttachShadow(shadow.NewBlock(d.Geom))

	if err := d.WriteAtQ(1, 0, make([]byte, 512), func(error) {}); err != nil {
		t.Fatal(err)
	}
	flushed := false
	if err := d.Flush(func(err error) { flushed = err == nil }); err != nil {
		t.Fatal(err)
	}

	if _, err := m.BeginRecovery("d0"); err != nil {
		t.Fatal(err)
	}
	f2 := newFake(1, 8)
	d2, err := m.Register("d0", geom(), f2)
	if err != nil || d2 != d {
		t.Fatalf("adoption failed: %v", err)
	}
	if _, err := d.CompleteRecovery(); err != nil {
		t.Fatal(err)
	}
	// The replayed write must arrive before any flush.
	if len(f2.pending[0]) != 1 || f2.pending[0][0].Flush {
		t.Fatalf("replay schedule wrong: %+v", f2.pending[0])
	}
	completeOne(d, f2, 0) // write completes → flush dispatches
	if len(f2.pending[0]) != 1 || !f2.pending[0][0].Flush {
		t.Fatalf("flush not dispatched after replay: %+v", f2.pending[0])
	}
	completeOne(d, f2, 0)
	if !flushed {
		t.Fatal("barrier never completed across recovery")
	}
}
