package kernel

import (
	"fmt"
	"testing"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/hw"
	"sud/internal/irq"
	"sud/internal/pci"
	"sud/internal/sim"
)

// probeDriver is a configurable test driver.
type probeDriver struct {
	name    string
	match   func(v, d uint16) bool
	onProbe func(env api.Env) error
	env     api.Env
}

type stubInstance struct{ removed *bool }

func (s stubInstance) Remove() { *s.removed = true }

func (p *probeDriver) Name() string { return p.name }
func (p *probeDriver) Match(v, d uint16) bool {
	if p.match != nil {
		return p.match(v, d)
	}
	return true
}
func (p *probeDriver) Probe(env api.Env) (api.Instance, error) {
	p.env = env
	removed := false
	if p.onProbe != nil {
		if err := p.onProbe(env); err != nil {
			return nil, err
		}
	}
	return stubInstance{removed: &removed}, nil
}

func newWorld(t *testing.T) (*hw.Machine, *Kernel, *e1000.NIC) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	return m, k, nic
}

func TestJiffies(t *testing.T) {
	m, k, _ := newWorld(t)
	if k.Jiffies() != 0 {
		t.Fatal("jiffies nonzero at boot")
	}
	m.Loop.RunFor(sim.Second)
	if k.Jiffies() != HZ {
		t.Fatalf("jiffies after 1s = %d, want %d", k.Jiffies(), HZ)
	}
}

func TestBindMatchRejection(t *testing.T) {
	_, k, nic := newWorld(t)
	d := &probeDriver{name: "wrong", match: func(v, _ uint16) bool { return v == 0x1234 }}
	if _, err := k.BindInKernel(d, nic); err == nil {
		t.Fatal("mismatched driver bound")
	}
}

func TestBindProbeFailureDetachesDomain(t *testing.T) {
	m, k, nic := newWorld(t)
	d := &probeDriver{name: "failing", onProbe: func(api.Env) error { return fmt.Errorf("no hardware") }}
	if _, err := k.BindInKernel(d, nic); err == nil {
		t.Fatal("failing probe bound")
	}
	if m.IOMMU.Domain(nic.BDF()) != nil {
		t.Fatal("domain left attached after failed probe")
	}
}

func TestBindDuplicateRejected(t *testing.T) {
	_, k, nic := newWorld(t)
	if _, err := k.BindInKernel(&probeDriver{name: "a"}, nic); err != nil {
		t.Fatal(err)
	}
	if _, err := k.BindInKernel(&probeDriver{name: "b"}, nic); err == nil {
		t.Fatal("second bind on the same device succeeded")
	}
}

func TestUnbindRemovesAndDetaches(t *testing.T) {
	m, k, nic := newWorld(t)
	if _, err := k.BindInKernel(&probeDriver{name: "a"}, nic); err != nil {
		t.Fatal(err)
	}
	if m.IOMMU.Domain(nic.BDF()) == nil {
		t.Fatal("no domain after bind")
	}
	k.Unbind(nic)
	if m.IOMMU.Domain(nic.BDF()) != nil {
		t.Fatal("domain survives unbind")
	}
	// Rebind works after unbind.
	if _, err := k.BindInKernel(&probeDriver{name: "c"}, nic); err != nil {
		t.Fatal(err)
	}
}

func TestPassthroughDomainIdentity(t *testing.T) {
	m, k, nic := newWorld(t)
	if _, err := k.BindInKernel(&probeDriver{name: "a", onProbe: func(env api.Env) error {
		return env.SetMaster()
	}}, nic); err != nil {
		t.Fatal(err)
	}
	// Trusted drivers get passthrough DMA: anywhere in DRAM works.
	if err := nic.DMAWrite(hw.DRAMBase+12345, []byte{1, 2}); err != nil {
		t.Fatal("passthrough DMA failed:", err)
	}
	b := make([]byte, 2)
	m.Mem.MustRead(hw.DRAMBase+12345, b)
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("DMA data wrong")
	}
	if k.PassthroughDomain() != k.PassthroughDomain() {
		t.Fatal("passthrough domain not shared")
	}
}

func TestKernelEnvSurface(t *testing.T) {
	m, k, nic := newWorld(t)
	var env api.Env
	d := &probeDriver{name: "surface", onProbe: func(e api.Env) error {
		env = e
		return nil
	}}
	if _, err := k.BindInKernel(d, nic); err != nil {
		t.Fatal(err)
	}

	// Config + capability walk.
	if v, _ := env.ConfigRead(pci.CfgVendorID, 2); v != 0x8086 {
		t.Fatalf("vendor = %#x", v)
	}
	if env.FindCapability(pci.CapIDMSI) == 0 {
		t.Fatal("MSI capability not found")
	}
	if env.FindCapability(0x99) != 0 {
		t.Fatal("phantom capability found")
	}
	if err := env.EnableDevice(); err != nil {
		t.Fatal(err)
	}

	// MMIO.
	mm, err := env.IORemap(0)
	if err != nil {
		t.Fatal(err)
	}
	mm.Write32(e1000.RegITR, 77)
	if mm.Read32(e1000.RegITR) != 77 {
		t.Fatal("MMIO round trip failed")
	}
	if _, err := env.IORemap(3); err == nil {
		t.Fatal("remapped a missing BAR")
	}
	if _, err := env.RequestRegion(0); err == nil {
		t.Fatal("IO region on memory BAR granted")
	}

	// DMA buffers.
	buf, err := env.AllocCoherent(5000)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Size() != 5000 {
		t.Fatalf("size = %d", buf.Size())
	}
	if err := buf.Write(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := buf.Read(0, got); err != nil || string(got) != "hello" {
		t.Fatalf("DMA buf round trip: %q %v", got, err)
	}
	if view, ok := buf.Slice(0, 5); !ok || string(view) != "hello" {
		t.Fatal("Slice view wrong")
	}
	if _, ok := buf.Slice(4999, 2); ok {
		t.Fatal("out-of-bounds slice granted")
	}
	if err := buf.Write(4999, []byte{1, 2}); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := env.FreeDMA(buf); err != nil {
		t.Fatal(err)
	}
	if err := env.FreeDMA(buf); err == nil {
		t.Fatal("double free accepted")
	}

	// IRQ.
	fired := 0
	if err := env.RequestIRQ(func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := env.RequestIRQ(func() {}); err == nil {
		t.Fatal("double IRQ request accepted")
	}
	msi := nic.Config().MSI()
	if !msi.Enabled {
		t.Fatal("MSI not programmed by RequestIRQ")
	}
	m.IRQ.Inject(irq.Vector(msi.Data))
	m.Loop.Run()
	if fired != 1 {
		t.Fatalf("handler fired %d times", fired)
	}
	env.IRQAck() // no-op for trusted drivers
	if err := env.FreeIRQ(); err != nil {
		t.Fatal(err)
	}
	if nic.Config().MSI().Enabled {
		t.Fatal("MSI still enabled after FreeIRQ")
	}

	// Timer.
	var at uint64
	env.Timer(10, func() { at = env.Jiffies() })
	m.Loop.RunFor(sim.Second)
	if at != 10 {
		t.Fatalf("timer fired at jiffy %d, want 10", at)
	}

	// Log.
	env.Logf("test message %d", 42)
	found := false
	for _, l := range k.Log() {
		if l == "[surface] test message 42" {
			found = true
		}
	}
	if !found {
		t.Fatalf("log line missing: %v", k.Log())
	}
}

func TestStormHandlerRegistry(t *testing.T) {
	m, k, _ := newWorld(t)
	var got int
	k.RegisterStormHandler(0x50, func(rate int) { got = rate })
	if err := m.IRQ.Register(0x50, func(irq.Vector) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.IRQ.StormThreshold; i++ {
		m.IRQ.Inject(0x50)
	}
	if got < m.IRQ.StormThreshold {
		t.Fatalf("storm handler saw rate %d", got)
	}
	k.RegisterStormHandler(0x50, nil) // removal is safe
}
