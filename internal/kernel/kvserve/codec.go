// Package kvserve is the tenant plane's workload: a sharded in-memory KV
// service layered on the unified queue-aware kernel API. Each tenant owns one
// UDP port, one NIC queue and one LBA region of the backing block device, so
// the per-queue IOMMU sub-domains and surgical recovery underneath become
// tenant isolation boundaries: a malicious or wedged driver queue is one
// tenant's outage, not the service's.
package kvserve

import (
	"encoding/binary"
	"fmt"
)

// Request opcodes.
const (
	OpGet = 1
	OpPut = 2
	OpDel = 3
)

// Response status codes.
const (
	StOK       = 0
	StNotFound = 1
	StErr      = 2
)

// Wire limits. Keys and values are bounded so a request always fits one
// UDP datagram and a stored pair always fits one block.
const (
	MaxKeyLen = 64
	MaxValLen = 1024
)

// Request is one tenant operation on the wire:
//
//	| op(1) | id(8 BE) | klen(1) | key | vlen(2 BE) | value |
//
// The value section is present only for OpPut.
type Request struct {
	Op  byte
	ID  uint64
	Key []byte
	Val []byte
}

// Response is the service's reply:
//
//	| status(1) | id(8 BE) | vlen(2 BE) | value |
//
// The id echoes the request so closed-loop clients can match replies — and
// discard duplicates produced by at-least-once TX replay after a recovery.
type Response struct {
	Status byte
	ID     uint64
	Val    []byte
}

// EncodeRequest serialises r. It does not validate lengths beyond what the
// format can carry; DecodeRequest is the defensive side.
func EncodeRequest(r Request) []byte {
	n := 1 + 8 + 1 + len(r.Key)
	if r.Op == OpPut {
		n += 2 + len(r.Val)
	}
	b := make([]byte, 0, n)
	b = append(b, r.Op)
	b = binary.BigEndian.AppendUint64(b, r.ID)
	b = append(b, byte(len(r.Key)))
	b = append(b, r.Key...)
	if r.Op == OpPut {
		b = binary.BigEndian.AppendUint16(b, uint16(len(r.Val)))
		b = append(b, r.Val...)
	}
	return b
}

// DecodeRequest parses an untrusted datagram. Every length is validated
// before use and trailing bytes are rejected — this parser faces whatever a
// tenant's client (or a fuzzer) puts on the wire.
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	if len(b) < 1+8+1 {
		return r, fmt.Errorf("kvserve: request truncated (%d bytes)", len(b))
	}
	r.Op = b[0]
	if r.Op != OpGet && r.Op != OpPut && r.Op != OpDel {
		return r, fmt.Errorf("kvserve: unknown op %d", r.Op)
	}
	r.ID = binary.BigEndian.Uint64(b[1:9])
	klen := int(b[9])
	if klen == 0 || klen > MaxKeyLen {
		return r, fmt.Errorf("kvserve: key length %d out of range", klen)
	}
	rest := b[10:]
	if len(rest) < klen {
		return r, fmt.Errorf("kvserve: key truncated (%d of %d bytes)", len(rest), klen)
	}
	r.Key = rest[:klen]
	rest = rest[klen:]
	if r.Op != OpPut {
		if len(rest) != 0 {
			return r, fmt.Errorf("kvserve: %d trailing bytes", len(rest))
		}
		return r, nil
	}
	if len(rest) < 2 {
		return r, fmt.Errorf("kvserve: value length truncated")
	}
	vlen := int(binary.BigEndian.Uint16(rest))
	if vlen > MaxValLen {
		return r, fmt.Errorf("kvserve: value length %d out of range", vlen)
	}
	rest = rest[2:]
	if len(rest) != vlen {
		return r, fmt.Errorf("kvserve: value is %d bytes, header says %d", len(rest), vlen)
	}
	r.Val = rest
	return r, nil
}

// EncodeResponse serialises a reply.
func EncodeResponse(r Response) []byte {
	b := make([]byte, 0, 1+8+2+len(r.Val))
	b = append(b, r.Status)
	b = binary.BigEndian.AppendUint64(b, r.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Val)))
	b = append(b, r.Val...)
	return b
}

// DecodeResponse parses a reply on the client side.
func DecodeResponse(b []byte) (Response, error) {
	var r Response
	if len(b) < 1+8+2 {
		return r, fmt.Errorf("kvserve: response truncated (%d bytes)", len(b))
	}
	r.Status = b[0]
	r.ID = binary.BigEndian.Uint64(b[1:9])
	vlen := int(binary.BigEndian.Uint16(b[9:11]))
	if vlen > MaxValLen {
		return r, fmt.Errorf("kvserve: response value length %d out of range", vlen)
	}
	if len(b[11:]) != vlen {
		return r, fmt.Errorf("kvserve: response value is %d bytes, header says %d", len(b[11:]), vlen)
	}
	r.Val = b[11:]
	return r, nil
}
