package kvserve

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest drives the tenant-facing request parser with arbitrary
// datagrams. The parser must never panic, and anything it accepts must
// re-encode to the very bytes it consumed (the format has no redundancy, so
// accept → canonical).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpGet, ID: 1, Key: []byte("k")}))
	f.Add(EncodeRequest(Request{Op: OpPut, ID: 99, Key: []byte("key"), Val: []byte("value")}))
	f.Add(EncodeRequest(Request{Op: OpDel, ID: 1 << 60, Key: bytes.Repeat([]byte{'x'}, MaxKeyLen)}))
	f.Add([]byte{})
	f.Add([]byte{OpPut, 0, 0, 0, 0, 0, 0, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		if len(req.Key) == 0 || len(req.Key) > MaxKeyLen || len(req.Val) > MaxValLen {
			t.Fatalf("accepted out-of-range lengths: key=%d val=%d", len(req.Key), len(req.Val))
		}
		if got := EncodeRequest(req); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, got)
		}
	})
}
