package kvserve

import (
	"bytes"
	"errors"
	"testing"

	"sud/internal/drivers/api"
	"sud/internal/kernel/blockdev"
	"sud/internal/kernel/netstack"
	"sud/internal/sim"
)

var errMedia = errors.New("media error")

var (
	srvMAC = netstack.MAC{2, 0, 0, 0, 0, 1}
	cliMAC = netstack.MAC{2, 0, 0, 0, 0, 2}
	srvIP  = netstack.IP{10, 0, 0, 1}
	cliIP  = netstack.IP{10, 0, 0, 2}
)

// mqDev is a fake multi-queue netdev recording transmits per queue.
type mqDev struct {
	nq  int
	txq map[int][][]byte
}

func (d *mqDev) Open() error  { return nil }
func (d *mqDev) Stop() error  { return nil }
func (d *mqDev) TxQueues() int { return d.nq }
func (d *mqDev) StartXmit(f []byte) error { return d.StartXmitQ(f, 0) }
func (d *mqDev) StartXmitQ(f []byte, q int) error {
	if d.txq == nil {
		d.txq = map[int][][]byte{}
	}
	d.txq[q] = append(d.txq[q], f)
	return nil
}
func (d *mqDev) DoIoctl(cmd uint32, arg []byte) ([]byte, error) { return nil, nil }

// blkDrv is a fake block driver that completes every submission a few
// microseconds later on the sim loop.
type blkDrv struct {
	loop   *sim.Loop
	dev    *blockdev.Dev
	fail   bool
	subs   []api.BlockRequest
	queues int
}

func (f *blkDrv) Open() error { return nil }
func (f *blkDrv) Stop() error { return nil }
func (f *blkDrv) Queues() int { return f.queues }
func (f *blkDrv) Submit(q int, req api.BlockRequest) error {
	f.subs = append(f.subs, req)
	f.loop.After(5*sim.Microsecond, func() {
		var err error
		if f.fail {
			err = errMedia
		}
		f.dev.Complete(q, req.Tag, err, req.Data)
	})
	return nil
}

type fixture struct {
	loop *sim.Loop
	ns   *netstack.Stack
	ifc  *netstack.Iface
	nic  *mqDev
	srv  *Server
	blk  *blkDrv
}

func newFixture(t *testing.T, tenants int, persist bool) *fixture {
	t.Helper()
	loop := sim.NewLoop()
	stats := sim.NewCPUStats(2)
	ns := netstack.New(loop, stats.Account("kernel"))
	nic := &mqDev{nq: 4}
	ifc, err := ns.Register("eth0", [6]byte(srvMAC), nic)
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(srvIP); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tenants: tenants, PortBase: 8000, ClientMAC: cliMAC}
	fx := &fixture{loop: loop, ns: ns, ifc: ifc, nic: nic}
	if persist {
		bm := blockdev.New(loop, stats.Account("kernel"))
		fx.blk = &blkDrv{loop: loop, queues: 4}
		dev, err := bm.Register("nvme0", api.BlockGeometry{BlockSize: 4096, Blocks: 4096}, fx.blk)
		if err != nil {
			t.Fatal(err)
		}
		fx.blk.dev = dev
		if err := dev.Up(); err != nil {
			t.Fatal(err)
		}
		cfg.Store, cfg.LBABase, cfg.BlocksPerTenant = dev, 0, 64
	}
	srv, err := New(ns, ifc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fx.srv = srv
	return fx
}

// send injects one client request frame on the tenant's RX queue and returns
// the request id used.
func (fx *fixture) send(tn *Tenant, sport uint16, req Request) {
	frame := netstack.BuildUDPFrame([6]byte(cliMAC), [6]byte(srvMAC), cliIP, srvIP,
		sport, tn.Port, EncodeRequest(req))
	fx.ifc.NetifRx(frame, tn.Queue)
}

// lastReply decodes the newest reply on queue q and checks its UDP addressing.
func (fx *fixture) lastReply(t *testing.T, q int) Response {
	t.Helper()
	frames := fx.nic.txq[q]
	if len(frames) == 0 {
		t.Fatalf("no reply on queue %d", q)
	}
	f := frames[len(frames)-1]
	// Strip Eth+IPv4+UDP (no options on this path).
	payload := f[netstack.EthHeaderLen+20+8:]
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("reply undecodable: %v", err)
	}
	return resp
}

func TestPutGetDelRoundTrip(t *testing.T) {
	fx := newFixture(t, 3, false)
	tn := fx.srv.Tenant(2) // queue 2 of 4
	if tn.Queue != 2 {
		t.Fatalf("tenant 2 on queue %d", tn.Queue)
	}

	fx.send(tn, 53000, Request{Op: OpPut, ID: 1, Key: []byte("k"), Val: []byte("v1")})
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || r.ID != 1 {
		t.Fatalf("put reply %+v", r)
	}
	fx.send(tn, 53000, Request{Op: OpGet, ID: 2, Key: []byte("k")})
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || r.ID != 2 || string(r.Val) != "v1" {
		t.Fatalf("get reply %+v", r)
	}
	fx.send(tn, 53000, Request{Op: OpDel, ID: 3, Key: []byte("k")})
	fx.send(tn, 53000, Request{Op: OpGet, ID: 4, Key: []byte("k")})
	if r := fx.lastReply(t, tn.Queue); r.Status != StNotFound || r.ID != 4 {
		t.Fatalf("get-after-del reply %+v", r)
	}
	if tn.Requests != 4 || tn.Puts != 1 || tn.Gets != 2 || tn.Dels != 1 || tn.NotFound != 1 {
		t.Fatalf("counters %+v", *tn)
	}
	// Shard isolation: nothing crossed to sibling tenants.
	if got := fx.srv.Tenant(0).Requests + fx.srv.Tenant(1).Requests; got != 0 {
		t.Fatalf("sibling tenants saw %d requests", got)
	}
}

// TestRepliesPinnedToTenantQueue: the reply leaves on the tenant's NIC queue
// even when the reply flow's hash would steer elsewhere — UDPSendToQ is what
// keeps per-queue recovery a per-tenant event.
func TestRepliesPinnedToTenantQueue(t *testing.T) {
	fx := newFixture(t, 4, false)
	for ti := 0; ti < 4; ti++ {
		tn := fx.srv.Tenant(ti)
		sport := uint16(53100 + ti)
		fx.send(tn, sport, Request{Op: OpGet, ID: uint64(ti), Key: []byte("x")})
		if r := fx.lastReply(t, tn.Queue); r.ID != uint64(ti) {
			t.Fatalf("tenant %d reply not on queue %d", ti, tn.Queue)
		}
	}
}

func TestWriteThroughPersistsBeforeReply(t *testing.T) {
	fx := newFixture(t, 2, true)
	tn := fx.srv.Tenant(1)

	fx.send(tn, 53000, Request{Op: OpPut, ID: 7, Key: []byte("key"), Val: []byte("val")})
	// The reply waits for the storage completion.
	if got := len(fx.nic.txq[tn.Queue]); got != 0 {
		t.Fatalf("replied before persistence (%d frames)", got)
	}
	if len(fx.blk.subs) != 1 {
		t.Fatalf("%d block submissions", len(fx.blk.subs))
	}
	sub := fx.blk.subs[0]
	base := uint64(tn.ID) * 64
	if sub.LBA < base || sub.LBA >= base+64 {
		t.Fatalf("write at LBA %d outside tenant region [%d,%d)", sub.LBA, base, base+64)
	}
	if sub.Data[0] != 3 || !bytes.Equal(sub.Data[1:4], []byte("key")) {
		t.Fatalf("packed block header %v", sub.Data[:8])
	}
	fx.loop.RunFor(sim.Millisecond)
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || r.ID != 7 {
		t.Fatalf("put reply %+v", r)
	}
	if tn.PersistErrs != 0 {
		t.Fatalf("persist errors %d", tn.PersistErrs)
	}
}

// TestDegradedServiceOnStorageFailure: a failing store costs durability, not
// availability — the tenant acknowledges, serves from memory and counts it.
func TestDegradedServiceOnStorageFailure(t *testing.T) {
	fx := newFixture(t, 1, true)
	tn := fx.srv.Tenant(0)
	fx.blk.fail = true

	fx.send(tn, 53000, Request{Op: OpPut, ID: 9, Key: []byte("k"), Val: []byte("v")})
	fx.loop.RunFor(sim.Millisecond)
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || r.ID != 9 {
		t.Fatalf("degraded put reply %+v", r)
	}
	if tn.PersistErrs != 1 {
		t.Fatalf("persist errors %d, want 1", tn.PersistErrs)
	}
	fx.send(tn, 53000, Request{Op: OpGet, ID: 10, Key: []byte("k")})
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || string(r.Val) != "v" {
		t.Fatalf("memory-backed get %+v", r)
	}

	// A downed device refuses synchronously; same degraded contract.
	fx.blk.fail = false
	if err := fx.blk.dev.Down(); err != nil {
		t.Fatal(err)
	}
	fx.send(tn, 53000, Request{Op: OpPut, ID: 11, Key: []byte("k2"), Val: []byte("v2")})
	if r := fx.lastReply(t, tn.Queue); r.Status != StOK || r.ID != 11 {
		t.Fatalf("put with device down %+v", r)
	}
	if tn.PersistErrs != 2 {
		t.Fatalf("persist errors %d, want 2", tn.PersistErrs)
	}
}

func TestBadRequestsDroppedWithoutReply(t *testing.T) {
	fx := newFixture(t, 1, false)
	tn := fx.srv.Tenant(0)
	for _, garbage := range [][]byte{
		nil,
		{OpGet},                       // truncated header
		{99, 0, 0, 0, 0, 0, 0, 0, 1, 1, 'k'}, // unknown op
		{OpGet, 0, 0, 0, 0, 0, 0, 0, 1, 0},   // zero-length key
		append(EncodeRequest(Request{Op: OpGet, ID: 1, Key: []byte("k")}), 0xFF), // trailing byte
	} {
		frame := netstack.BuildUDPFrame([6]byte(cliMAC), [6]byte(srvMAC), cliIP, srvIP,
			53000, tn.Port, garbage)
		fx.ifc.NetifRx(frame, tn.Queue)
	}
	if tn.BadRequests != 5 || tn.Requests != 0 {
		t.Fatalf("bad=%d requests=%d", tn.BadRequests, tn.Requests)
	}
	if len(fx.nic.txq[tn.Queue]) != 0 {
		t.Fatal("garbage earned a reply")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 42, Key: []byte("alpha")},
		{Op: OpPut, ID: 1 << 40, Key: []byte("k"), Val: bytes.Repeat([]byte{0xAB}, MaxValLen)},
		{Op: OpPut, ID: 7, Key: []byte("empty-val"), Val: nil},
		{Op: OpDel, ID: 0, Key: bytes.Repeat([]byte{'x'}, MaxKeyLen)},
	}
	for _, want := range reqs {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got.Op != want.Op || got.ID != want.ID || !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("round trip %+v != %+v", got, want)
		}
	}
	resp := Response{Status: StOK, ID: 99, Val: []byte("payload")}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil || got.Status != resp.Status || got.ID != resp.ID || !bytes.Equal(got.Val, resp.Val) {
		t.Fatalf("response round trip %+v (%v)", got, err)
	}
}
