package kvserve

import (
	"fmt"

	"sud/internal/kernel/blockdev"
	"sud/internal/kernel/netstack"
)

// Config shapes the service.
type Config struct {
	// Tenants is the shard count: tenant t serves UDP port PortBase+t and is
	// pinned to NIC queue t mod NumQueues and block queue t mod NumQueues.
	Tenants  int
	PortBase uint16
	// ClientMAC stands in for ARP resolution of the tenants' clients (the
	// benchmark LAN has static neighbours).
	ClientMAC netstack.MAC
	// Store, when non-nil, is the write-through persistence layer. Each
	// tenant owns the LBA region [LBABase + t*BlocksPerTenant, +BlocksPerTenant).
	Store           *blockdev.Dev
	LBABase         uint64
	BlocksPerTenant uint64
}

// Tenant is one shard: a port, a NIC queue, a block queue, an LBA region and
// an in-memory map. The memory copy is authoritative — persistence is
// write-through, so storage trouble degrades durability, never availability.
type Tenant struct {
	ID    int
	Port  uint16
	Queue int // NIC queue: both the RSS ring requests arrive on and the TX queue replies leave on
	BlkQ  int // block device queue persistence submits to

	store map[string][]byte

	// Counters. PersistErrs counts writes the block layer refused or failed
	// (quarantined device, congestion): the tenant keeps serving from memory
	// and still acknowledges — degraded, not down.
	Requests, Gets, Puts, Dels uint64
	NotFound, BadRequests      uint64
	PersistErrs, ReplyErrs     uint64
}

// Server owns the shards and the sockets.
type Server struct {
	cfg     Config
	stack   *netstack.Stack
	ifc     *netstack.Iface
	tenants []*Tenant
}

// New binds one UDP socket per tenant on stack/ifc and wires each shard to
// its queues. Requests reach tenant t's NIC queue by RSS when clients pick
// source ports with netstack.TxQueueForPorts(sport, port(t), NumQueues) ==
// t mod NumQueues; replies are pinned there explicitly via UDPSendToQ.
func New(stack *netstack.Stack, ifc *netstack.Iface, cfg Config) (*Server, error) {
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("kvserve: need at least one tenant")
	}
	if cfg.Store != nil && cfg.BlocksPerTenant == 0 {
		return nil, fmt.Errorf("kvserve: persistent config needs BlocksPerTenant")
	}
	s := &Server{cfg: cfg, stack: stack, ifc: ifc}
	nq := ifc.NumQueues()
	bq := 1
	if cfg.Store != nil {
		bq = cfg.Store.NumQueues()
	}
	for t := 0; t < cfg.Tenants; t++ {
		tn := &Tenant{
			ID:    t,
			Port:  cfg.PortBase + uint16(t),
			Queue: t % nq,
			BlkQ:  t % bq,
			store: make(map[string][]byte),
		}
		if _, err := stack.UDPBind(tn.Port, func(payload []byte, srcIP netstack.IP, srcPort uint16) {
			s.serve(tn, payload, srcIP, srcPort)
		}); err != nil {
			for _, prev := range s.tenants {
				stack.UDPClose(prev.Port)
			}
			return nil, err
		}
		s.tenants = append(s.tenants, tn)
	}
	return s, nil
}

// Close releases the tenant sockets.
func (s *Server) Close() {
	for _, tn := range s.tenants {
		s.stack.UDPClose(tn.Port)
	}
}

// Tenant returns shard t.
func (s *Server) Tenant(t int) *Tenant { return s.tenants[t] }

// Tenants returns the shard count.
func (s *Server) Tenants() int { return len(s.tenants) }

// serve handles one datagram on tenant tn's port.
func (s *Server) serve(tn *Tenant, payload []byte, srcIP netstack.IP, srcPort uint16) {
	req, err := DecodeRequest(payload)
	if err != nil {
		// No trustworthy request id to echo: drop. The client's retransmit
		// timer owns this failure mode.
		tn.BadRequests++
		return
	}
	tn.Requests++
	switch req.Op {
	case OpGet:
		tn.Gets++
		if val, ok := tn.store[string(req.Key)]; ok {
			s.reply(tn, srcIP, srcPort, Response{Status: StOK, ID: req.ID, Val: val})
		} else {
			tn.NotFound++
			s.reply(tn, srcIP, srcPort, Response{Status: StNotFound, ID: req.ID})
		}
	case OpDel:
		tn.Dels++
		delete(tn.store, string(req.Key))
		s.reply(tn, srcIP, srcPort, Response{Status: StOK, ID: req.ID})
	case OpPut:
		tn.Puts++
		key := string(req.Key)
		val := append([]byte(nil), req.Val...)
		tn.store[key] = val
		if s.cfg.Store == nil {
			s.reply(tn, srcIP, srcPort, Response{Status: StOK, ID: req.ID})
			return
		}
		// Write-through on the tenant's own block queue; the reply waits for
		// the completion so the SLO histogram sees storage latency. A refused
		// or failed write degrades to memory-only service: count it, still
		// acknowledge — one tenant's quarantined queue must not turn sibling
		// durability trouble into unavailability.
		id, sIP, sPort := req.ID, srcIP, srcPort
		if err := s.cfg.Store.WriteAtQ(s.blockFor(tn, key), tn.BlkQ, s.packBlock(key, val), func(werr error) {
			if werr != nil {
				tn.PersistErrs++
			}
			s.reply(tn, sIP, sPort, Response{Status: StOK, ID: id})
		}); err != nil {
			tn.PersistErrs++
			s.reply(tn, srcIP, srcPort, Response{Status: StOK, ID: id})
		}
	}
}

// reply transmits a response pinned to the tenant's NIC queue.
func (s *Server) reply(tn *Tenant, dstIP netstack.IP, dstPort uint16, resp Response) {
	err := s.stack.UDPSendToQ(s.ifc, s.cfg.ClientMAC, dstIP, tn.Port, dstPort,
		EncodeResponse(resp), tn.Queue)
	if err != nil {
		// TX backpressure or a parked queue: the reply is lost and the
		// client retransmits. Confinement means this stays on tn.Queue.
		tn.ReplyErrs++
	}
}

// blockFor maps a key into the tenant's LBA region.
func (s *Server) blockFor(tn *Tenant, key string) uint64 {
	base := s.cfg.LBABase + uint64(tn.ID)*s.cfg.BlocksPerTenant
	return base + fnv64(key)%s.cfg.BlocksPerTenant
}

// packBlock lays `klen(1) key vlen(2) val` into one zero-padded block.
func (s *Server) packBlock(key string, val []byte) []byte {
	b := make([]byte, s.cfg.Store.Geom.BlockSize)
	b[0] = byte(len(key))
	copy(b[1:], key)
	off := 1 + len(key)
	b[off] = byte(len(val) >> 8)
	b[off+1] = byte(len(val))
	copy(b[off+2:], val)
	return b
}

// fnv64 is FNV-1a; it only has to spread keys across a tenant's blocks.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
