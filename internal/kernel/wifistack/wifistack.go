// Package wifistack is the kernel's 802.11 management layer (a condensed
// cfg80211/mac80211): it tracks registered wireless interfaces, their
// mirrored capability sets, scan results and association state, and routes
// data frames. The §3.1.1 subtlety lives here: the kernel queries features
// from a non-preemptable context, so feature state is mirrored at
// registration and never fetched by upcall.
package wifistack

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

// Manager owns all wireless interfaces of one kernel.
type Manager struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount

	ifaces map[string]*Iface
}

// New returns an empty manager.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Manager {
	return &Manager{Loop: loop, Acct: acct, ifaces: make(map[string]*Iface)}
}

// Iface is one wireless interface. It implements api.WifiKernel — the
// object handed back to in-kernel drivers at registration.
type Iface struct {
	Name string
	MAC  [6]byte

	// Features is the mirrored static capability set (§3.1.1); reading
	// it never calls into the driver.
	Features uint32

	mgr *Manager
	dev api.WifiDevice
	up  bool

	LastScan  []api.BSS
	AssocSSID string
	Carrier   bool

	// Callbacks for applications (wpa_supplicant stand-ins).
	OnScanDone func([]api.BSS)
	OnAssoc    func(ssid string)
	OnDisassoc func()
	OnRxFrame  func(frame []byte)

	// Counters.
	RxFrames, TxFrames uint64
	ScansCompleted     uint64
}

var _ api.WifiKernel = (*Iface)(nil)

// Register adds a wireless interface. features is mirrored from the driver
// once, at registration time.
func (m *Manager) Register(name string, mac [6]byte, dev api.WifiDevice, features uint32) (*Iface, error) {
	if _, dup := m.ifaces[name]; dup {
		return nil, fmt.Errorf("wifistack: interface %q already registered", name)
	}
	ifc := &Iface{Name: name, MAC: mac, Features: features, mgr: m, dev: dev}
	m.ifaces[name] = ifc
	return ifc, nil
}

// Unregister removes an interface.
func (m *Manager) Unregister(name string) { delete(m.ifaces, name) }

// Iface looks up an interface.
func (m *Manager) Iface(name string) (*Iface, error) {
	ifc, ok := m.ifaces[name]
	if !ok {
		return nil, fmt.Errorf("wifistack: no interface %q", name)
	}
	return ifc, nil
}

// Up opens the interface.
func (ifc *Iface) Up() error {
	if ifc.up {
		return nil
	}
	if err := ifc.dev.Open(); err != nil {
		return err
	}
	ifc.up = true
	return nil
}

// Down closes it.
func (ifc *Iface) Down() error {
	if !ifc.up {
		return nil
	}
	ifc.up = false
	return ifc.dev.Stop()
}

// Scan starts an asynchronous scan; OnScanDone fires on completion.
func (ifc *Iface) Scan() error {
	if !ifc.up {
		return fmt.Errorf("wifistack: %s is down", ifc.Name)
	}
	return ifc.dev.StartScan()
}

// Associate joins ssid; OnAssoc fires on completion.
func (ifc *Iface) Associate(ssid string) error {
	if !ifc.up {
		return fmt.Errorf("wifistack: %s is down", ifc.Name)
	}
	return ifc.dev.Associate(ssid)
}

// Disassociate leaves the network.
func (ifc *Iface) Disassociate() error { return ifc.dev.Disassociate() }

// SendFrame transmits a data frame.
func (ifc *Iface) SendFrame(frame []byte) error {
	if !ifc.up || !ifc.Carrier {
		return fmt.Errorf("wifistack: %s not associated", ifc.Name)
	}
	ifc.TxFrames++
	ifc.mgr.Acct.Charge(sim.Copy(len(frame)))
	return ifc.dev.StartXmit(frame)
}

// --- api.WifiKernel (driver → kernel) ---------------------------------------

// NetifRx implements api.WifiKernel.
func (ifc *Iface) NetifRx(frame []byte) {
	ifc.RxFrames++
	ifc.mgr.Acct.Charge(sim.Checksum(len(frame)))
	if ifc.OnRxFrame != nil {
		ifc.OnRxFrame(frame)
	}
}

// ScanDone implements api.WifiKernel: results are mirrored into kernel
// state before applications see them.
func (ifc *Iface) ScanDone(results []api.BSS) {
	ifc.ScansCompleted++
	ifc.LastScan = results
	if ifc.OnScanDone != nil {
		ifc.OnScanDone(results)
	}
}

// Associated implements api.WifiKernel.
func (ifc *Iface) Associated(ssid string) {
	ifc.AssocSSID = ssid
	ifc.Carrier = true
	if ifc.OnAssoc != nil {
		ifc.OnAssoc(ssid)
	}
}

// Disassociated implements api.WifiKernel.
func (ifc *Iface) Disassociated() {
	ifc.AssocSSID = ""
	ifc.Carrier = false
	if ifc.OnDisassoc != nil {
		ifc.OnDisassoc()
	}
}
