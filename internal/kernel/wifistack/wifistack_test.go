package wifistack

import (
	"fmt"
	"testing"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

type fakeCard struct {
	open, scanning bool
	assocReq       string
	sent           [][]byte
	failOpen       bool
}

func (c *fakeCard) Open() error {
	if c.failOpen {
		return fmt.Errorf("no radio")
	}
	c.open = true
	return nil
}
func (c *fakeCard) Stop() error                 { c.open = false; return nil }
func (c *fakeCard) StartScan() error            { c.scanning = true; return nil }
func (c *fakeCard) Associate(ssid string) error { c.assocReq = ssid; return nil }
func (c *fakeCard) Disassociate() error         { c.assocReq = ""; return nil }
func (c *fakeCard) StartXmit(f []byte) error    { c.sent = append(c.sent, f); return nil }
func (c *fakeCard) Features() uint32            { return api.WifiFeat11g }

var _ api.WifiDevice = (*fakeCard)(nil)

func newIface(t *testing.T) (*Manager, *Iface, *fakeCard) {
	t.Helper()
	stats := sim.NewCPUStats(2)
	m := New(sim.NewLoop(), stats.Account("kernel"))
	card := &fakeCard{}
	ifc, err := m.Register("wlan0", [6]byte{1, 2, 3, 4, 5, 6}, card, card.Features())
	if err != nil {
		t.Fatal(err)
	}
	return m, ifc, card
}

func TestRegisterDuplicateAndLookup(t *testing.T) {
	m, ifc, _ := newIface(t)
	if _, err := m.Register("wlan0", [6]byte{}, &fakeCard{}, 0); err == nil {
		t.Fatal("duplicate accepted")
	}
	got, err := m.Iface("wlan0")
	if err != nil || got != ifc {
		t.Fatal("lookup failed")
	}
	m.Unregister("wlan0")
	if _, err := m.Iface("wlan0"); err == nil {
		t.Fatal("unregistered iface found")
	}
}

func TestLifecycleGating(t *testing.T) {
	_, ifc, card := newIface(t)
	// Down: operational calls are refused.
	if err := ifc.Scan(); err == nil {
		t.Fatal("scan while down accepted")
	}
	if err := ifc.Associate("x"); err == nil {
		t.Fatal("associate while down accepted")
	}
	if err := ifc.SendFrame([]byte{1}); err == nil {
		t.Fatal("send while down accepted")
	}
	if err := ifc.Up(); err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !card.open {
		t.Fatal("device not opened")
	}
	// Up but no carrier: sends still refused.
	if err := ifc.SendFrame([]byte{1}); err == nil {
		t.Fatal("send without association accepted")
	}
	ifc.Associated("net")
	if err := ifc.SendFrame([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if len(card.sent) != 1 || ifc.TxFrames != 1 {
		t.Fatal("send not forwarded")
	}
	if err := ifc.Down(); err != nil || card.open {
		t.Fatal("down did not stop device")
	}
}

func TestOpenFailurePropagates(t *testing.T) {
	_, ifc, card := newIface(t)
	card.failOpen = true
	if err := ifc.Up(); err == nil {
		t.Fatal("failed open not propagated")
	}
	if ifc.up {
		t.Fatal("iface marked up after failed open")
	}
}

func TestMirroredStateAndCallbacks(t *testing.T) {
	_, ifc, _ := newIface(t)
	if ifc.Features != api.WifiFeat11g {
		t.Fatal("features not mirrored at registration")
	}
	var scans, assocs, disassocs, frames int
	ifc.OnScanDone = func(r []api.BSS) { scans = len(r) }
	ifc.OnAssoc = func(string) { assocs++ }
	ifc.OnDisassoc = func() { disassocs++ }
	ifc.OnRxFrame = func([]byte) { frames++ }

	ifc.ScanDone([]api.BSS{{SSID: "a"}, {SSID: "b"}})
	if scans != 2 || len(ifc.LastScan) != 2 || ifc.ScansCompleted != 1 {
		t.Fatal("scan results not mirrored")
	}
	ifc.Associated("a")
	if !ifc.Carrier || ifc.AssocSSID != "a" || assocs != 1 {
		t.Fatal("association not mirrored")
	}
	ifc.NetifRx([]byte{1, 2, 3})
	if frames != 1 || ifc.RxFrames != 1 {
		t.Fatal("rx not delivered")
	}
	ifc.Disassociated()
	if ifc.Carrier || ifc.AssocSSID != "" || disassocs != 1 {
		t.Fatal("disassociation not mirrored")
	}
}
