// Package kernel is the simulated operating system kernel: interrupt
// dispatch, jiffies, the kernel log, the network stack (subpackage
// netstack), and the trusted in-kernel driver host — the baseline
// configuration the paper's Figure 8 compares SUD against, in which drivers
// run with full privileges and devices DMA anywhere (passthrough IOMMU
// domain).
package kernel

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/kernel/audio"
	"sud/internal/kernel/blockdev"
	"sud/internal/kernel/netstack"
	"sud/internal/kernel/wifistack"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/trace"
)

// HZ is the kernel tick rate; Jiffies advance every 1/HZ seconds.
const HZ = 250

// CostKernelAPICall is the fixed bookkeeping cost of one driver-API call in
// the trusted in-kernel host (function call, small amounts of locking).
const CostKernelAPICall sim.Duration = 60

// Kernel is the simulated kernel of one machine.
type Kernel struct {
	M     *hw.Machine
	Acct  *sim.CPUAccount
	Net   *netstack.Stack
	Wifi  *wifistack.Manager
	Audio *audio.Manager
	Blk   *blockdev.Manager

	passthrough *iommu.Domain
	logs        []string

	// bound tracks in-kernel driver instances by device.
	bound map[pci.BDF]api.Instance

	// stormHandlers dispatches interrupt-storm notifications per vector.
	stormHandlers map[irq.Vector]func(rate int)
}

// New boots a kernel on machine m.
func New(m *hw.Machine) *Kernel {
	acct := m.CPU.Account("kernel")
	k := &Kernel{
		M:             m,
		Acct:          acct,
		Net:           netstack.New(m.Loop, acct),
		Wifi:          wifistack.New(m.Loop, acct),
		Audio:         audio.New(m.Loop, acct),
		Blk:           blockdev.New(m.Loop, acct),
		bound:         make(map[pci.BDF]api.Instance),
		stormHandlers: make(map[irq.Vector]func(rate int)),
	}
	k.Blk.Trace = m.Trace
	k.Net.Trace = m.Trace
	m.IRQ.OnStorm = func(v irq.Vector, rate int) {
		if h := k.stormHandlers[v]; h != nil {
			h(rate)
		}
	}
	return k
}

// RegisterStormHandler installs (or, with nil, removes) the interrupt-storm
// response for a vector. The safe PCI access module registers one per
// untrusted driver (§3.2.2).
func (k *Kernel) RegisterStormHandler(v irq.Vector, h func(rate int)) {
	if h == nil {
		delete(k.stormHandlers, v)
		return
	}
	k.stormHandlers[v] = h
}

// Jiffies returns the tick counter derived from virtual time.
func (k *Kernel) Jiffies() uint64 {
	return uint64(k.M.Now()) / uint64(sim.Second/HZ)
}

// Logf appends a kernel log line.
func (k *Kernel) Logf(format string, args ...any) {
	k.logs = append(k.logs, fmt.Sprintf(format, args...))
}

// Log returns the kernel log.
func (k *Kernel) Log() []string { return k.logs }

// PassthroughDomain returns the shared identity domain used for devices
// driven by trusted in-kernel drivers.
func (k *Kernel) PassthroughDomain() *iommu.Domain {
	if k.passthrough == nil {
		k.passthrough = k.M.IOMMU.NewDomain()
		k.passthrough.Passthrough = true
	}
	return k.passthrough
}

// BindInKernel probes drv against dev as a fully trusted in-kernel driver:
// direct hardware access, passthrough DMA, interrupt handlers running in
// kernel context. This is the baseline ("Kernel driver") configuration.
func (k *Kernel) BindInKernel(drv api.Driver, dev pci.Device) (api.Instance, error) {
	cfg := dev.Config()
	if !drv.Match(cfg.VendorID(), cfg.DeviceID()) {
		return nil, fmt.Errorf("kernel: driver %s does not match device %s (%04x:%04x)",
			drv.Name(), dev.BDF(), cfg.VendorID(), cfg.DeviceID())
	}
	if _, dup := k.bound[dev.BDF()]; dup {
		return nil, fmt.Errorf("kernel: device %s already bound", dev.BDF())
	}
	k.M.IOMMU.Attach(dev.BDF(), k.PassthroughDomain())
	env := &kernelEnv{k: k, dev: dev, name: drv.Name()}
	inst, err := drv.Probe(env)
	if err != nil {
		k.M.IOMMU.Attach(dev.BDF(), nil)
		return nil, fmt.Errorf("kernel: probe %s on %s: %w", drv.Name(), dev.BDF(), err)
	}
	k.bound[dev.BDF()] = inst
	if ts, ok := inst.(interface{ SetTracer(*trace.Tracer) }); ok {
		ts.SetTracer(k.M.Trace)
	}
	k.Logf("%s: bound to %s", drv.Name(), dev.BDF())
	return inst, nil
}

// Unbind removes the driver bound to dev.
func (k *Kernel) Unbind(dev pci.Device) {
	if inst, ok := k.bound[dev.BDF()]; ok {
		inst.Remove()
		delete(k.bound, dev.BDF())
		k.M.IOMMU.Attach(dev.BDF(), nil)
	}
}

// kernelEnv implements api.Env for trusted in-kernel drivers.
type kernelEnv struct {
	k    *Kernel
	dev  pci.Device
	name string

	vector  irq.Vector
	irqSet  bool
	remapIx uint8
}

var _ api.Env = (*kernelEnv)(nil)

func (e *kernelEnv) charge(d sim.Duration) { e.k.Acct.Charge(d) }

func (e *kernelEnv) ConfigRead(off, size int) (uint32, error) {
	e.charge(sim.CostPCIConfig)
	return e.dev.Config().Read(off, size), nil
}

func (e *kernelEnv) ConfigWrite(off, size int, v uint32) error {
	e.charge(sim.CostPCIConfig)
	e.dev.Config().Write(off, size, v)
	return nil
}

func (e *kernelEnv) EnableDevice() error {
	e.charge(sim.CostPCIConfig)
	cfg := e.dev.Config()
	cmd := cfg.Read(pci.CfgCommand, 2)
	cfg.Write(pci.CfgCommand, 2, cmd|pci.CmdMemSpace|pci.CmdIOSpace)
	return nil
}

func (e *kernelEnv) SetMaster() error {
	e.charge(sim.CostPCIConfig)
	cfg := e.dev.Config()
	cmd := cfg.Read(pci.CfgCommand, 2)
	cfg.Write(pci.CfgCommand, 2, cmd|pci.CmdBusMaster)
	return nil
}

func (e *kernelEnv) FindCapability(id uint8) int {
	e.charge(sim.CostPCIConfig)
	return FindCapability(e.dev.Config(), id)
}

// FindCapability walks a config space's capability list.
func FindCapability(cfg *pci.ConfigSpace, id uint8) int {
	off := int(cfg.Read(pci.CfgCapPtr, 1))
	for iter := 0; off != 0 && iter < 16; iter++ {
		if uint8(cfg.Read(off, 1)) == id {
			return off
		}
		off = int(cfg.Read(off+1, 1))
	}
	return 0
}

func (e *kernelEnv) IORemap(bar int) (api.MMIO, error) {
	e.charge(CostKernelAPICall)
	base, info := e.dev.Config().BAR(bar)
	if info.Size == 0 || info.IO {
		return nil, fmt.Errorf("kernel: BAR %d of %s is not a memory BAR", bar, e.dev.BDF())
	}
	_ = base
	return &kernelMMIO{e: e, bar: bar}, nil
}

type kernelMMIO struct {
	e   *kernelEnv
	bar int
}

func (m *kernelMMIO) Read32(off uint64) uint32 {
	m.e.charge(sim.CostMMIORead)
	return uint32(m.e.dev.MMIORead(m.bar, off, 4))
}

func (m *kernelMMIO) Write32(off uint64, v uint32) {
	m.e.charge(sim.CostMMIOWrite)
	m.e.dev.MMIOWrite(m.bar, off, 4, uint64(v))
}

func (e *kernelEnv) RequestRegion(bar int) (api.PortIO, error) {
	e.charge(CostKernelAPICall)
	_, info := e.dev.Config().BAR(bar)
	if info.Size == 0 || !info.IO {
		return nil, fmt.Errorf("kernel: BAR %d of %s is not an IO BAR", bar, e.dev.BDF())
	}
	return &kernelPortIO{e: e, bar: bar}, nil
}

type kernelPortIO struct {
	e   *kernelEnv
	bar int
}

func (p *kernelPortIO) In8(off uint64) uint8 {
	p.e.charge(sim.CostIOPort)
	return uint8(p.e.dev.IORead(p.bar, off, 1))
}

func (p *kernelPortIO) Out8(off uint64, v uint8) {
	p.e.charge(sim.CostIOPort)
	p.e.dev.IOWrite(p.bar, off, 1, uint32(v))
}

func (p *kernelPortIO) In16(off uint64) uint16 {
	p.e.charge(sim.CostIOPort)
	return uint16(p.e.dev.IORead(p.bar, off, 2))
}

func (p *kernelPortIO) Out16(off uint64, v uint16) {
	p.e.charge(sim.CostIOPort)
	p.e.dev.IOWrite(p.bar, off, 2, uint32(v))
}

// kernelDMA is DMA memory for the trusted host: physical pages, bus address
// == physical address.
type kernelDMA struct {
	e     *kernelEnv
	phys  mem.Addr
	size  int
	pages int
	freed bool
}

func (e *kernelEnv) allocDMA(size int) (api.DMABuf, error) {
	e.charge(CostKernelAPICall)
	pages := (size + 4095) / 4096
	base, ok := e.k.M.Alloc.AllocPages(pages)
	if !ok {
		return nil, fmt.Errorf("kernel: out of DMA memory (%d pages)", pages)
	}
	return &kernelDMA{e: e, phys: base, size: size, pages: pages}, nil
}

func (e *kernelEnv) AllocCoherent(size int) (api.DMABuf, error) { return e.allocDMA(size) }
func (e *kernelEnv) AllocCaching(size int) (api.DMABuf, error)  { return e.allocDMA(size) }

func (e *kernelEnv) FreeDMA(b api.DMABuf) error {
	kb, ok := b.(*kernelDMA)
	if !ok {
		return fmt.Errorf("kernel: foreign DMA buffer")
	}
	if kb.freed {
		return fmt.Errorf("kernel: double free of DMA buffer at %#x", kb.phys)
	}
	kb.freed = true
	e.k.M.Alloc.FreePages(kb.phys, kb.pages)
	return nil
}

func (b *kernelDMA) BusAddr() mem.Addr { return b.phys }
func (b *kernelDMA) Size() int         { return b.size }

func (b *kernelDMA) Read(off int, p []byte) error {
	if off < 0 || off+len(p) > b.size {
		return fmt.Errorf("kernel: DMA read out of bounds")
	}
	b.e.charge(sim.Copy(len(p)))
	return b.e.k.M.Mem.Read(b.phys+mem.Addr(off), p)
}

func (b *kernelDMA) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > b.size {
		return fmt.Errorf("kernel: DMA write out of bounds")
	}
	b.e.charge(sim.Copy(len(p)))
	return b.e.k.M.Mem.Write(b.phys+mem.Addr(off), p)
}

func (e *kernelEnv) RequestIRQ(handler func()) error {
	e.charge(CostKernelAPICall)
	if e.irqSet {
		return fmt.Errorf("kernel: IRQ already requested for %s", e.dev.BDF())
	}
	v, err := e.k.M.Vec.Alloc()
	if err != nil {
		return err
	}
	e.vector = v
	// Program the device's MSI capability the way the kernel MSI core
	// does: address = MSI window, data = vector (or remap index).
	cfg := e.dev.Config()
	capOff := FindCapability(cfg, pci.CapIDMSI)
	if capOff == 0 {
		return fmt.Errorf("kernel: device %s has no MSI capability", e.dev.BDF())
	}
	data := uint32(v)
	if rt := e.k.M.IRQ.Remap; rt != nil {
		// With interrupt remapping, the message data indexes the remap
		// table; install an IRTE validated against this device.
		e.remapIx = uint8(v)
		rt.Set(e.remapIx, irq.IRTE{Valid: true, Source: e.dev.BDF(), Vector: v})
		data = uint32(e.remapIx)
	}
	cfg.Write(capOff+4, 4, uint32(iommu.MSIBase))
	cfg.Write(capOff+8, 2, data)
	cfg.Write(capOff+2, 2, pci.MSICtlEnable)

	k := e.k
	if err := k.M.IRQ.Register(v, func(irq.Vector) {
		k.Acct.Charge(sim.CostInterruptEntry)
		handler()
	}); err != nil {
		return err
	}
	e.irqSet = true
	return nil
}

func (e *kernelEnv) FreeIRQ() error {
	e.charge(CostKernelAPICall)
	if !e.irqSet {
		return fmt.Errorf("kernel: no IRQ requested")
	}
	if err := e.k.M.IRQ.Register(e.vector, nil); err != nil {
		return err
	}
	cfg := e.dev.Config()
	if capOff := FindCapability(cfg, pci.CapIDMSI); capOff != 0 {
		cfg.Write(capOff+2, 2, 0) // disable MSI
	}
	if rt := e.k.M.IRQ.Remap; rt != nil {
		rt.Set(e.remapIx, irq.IRTE{})
	}
	e.irqSet = false
	return nil
}

// IRQAck is a no-op for trusted drivers: the kernel never masked the MSI.
func (e *kernelEnv) IRQAck() {}

func (e *kernelEnv) RegisterNetDev(name string, macAddr [6]byte, dev api.NetDevice) (api.NetKernel, error) {
	e.charge(CostKernelAPICall)
	return e.k.Net.Register(name, macAddr, dev)
}

func (e *kernelEnv) Jiffies() uint64 { return e.k.Jiffies() }

// RegisterWifiDev implements api.EnvWifi: the trusted host registers the
// wireless interface directly, mirroring the feature set at registration.
func (e *kernelEnv) RegisterWifiDev(name string, macAddr [6]byte, dev api.WifiDevice) (api.WifiKernel, error) {
	e.charge(CostKernelAPICall)
	return e.k.Wifi.Register(name, macAddr, dev, dev.Features())
}

// RegisterSoundDev implements api.EnvAudio for the trusted host.
func (e *kernelEnv) RegisterSoundDev(name string, dev api.AudioDevice) (api.AudioKernel, error) {
	e.charge(CostKernelAPICall)
	return e.k.Audio.Register(name, dev)
}

// RegisterBlockDev implements api.EnvBlock for the trusted host: the block
// core hands back its per-queue completion surface directly.
func (e *kernelEnv) RegisterBlockDev(name string, geom api.BlockGeometry, dev api.BlockDevice) (api.BlockKernel, error) {
	e.charge(CostKernelAPICall)
	return e.k.Blk.Register(name, geom, dev)
}

func (e *kernelEnv) Timer(delayJiffies uint64, fn func()) {
	e.charge(CostKernelAPICall)
	k := e.k
	k.M.Loop.After(sim.Duration(delayJiffies)*(sim.Second/HZ), func() {
		k.Acct.Charge(CostKernelAPICall)
		fn()
	})
}

// Slice implements zero-copy access for kernelDMA.
func (b *kernelDMA) Slice(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > b.size {
		return nil, false
	}
	return b.e.k.M.Mem.Slice(b.phys+mem.Addr(off), n)
}

func (e *kernelEnv) Logf(format string, args ...any) {
	e.k.Logf("["+e.name+"] "+format, args...)
}
