// Package audio is the kernel's PCM subsystem (a condensed ALSA core): it
// tracks registered sound devices and gives applications a period-driven
// playback API with underrun accounting. Under SUD the latency of the
// period-elapsed path is what makes real-time scheduling of the driver
// process interesting (§4.1).
package audio

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

// Manager owns the sound devices of one kernel.
type Manager struct {
	Loop *sim.Loop
	Acct *sim.CPUAccount

	pcms map[string]*PCM
}

// New returns an empty manager.
func New(loop *sim.Loop, acct *sim.CPUAccount) *Manager {
	return &Manager{Loop: loop, Acct: acct, pcms: make(map[string]*PCM)}
}

// PCM is one playback stream. It implements api.AudioKernel.
type PCM struct {
	Name string

	mgr *Manager
	dev api.AudioDevice

	rate        int
	periodBytes int
	periods     int
	prepared    bool
	running     bool

	// appWritten tracks how many periods the application has queued;
	// hwConsumed how many the hardware reported. Falling behind is an
	// underrun.
	appWritten int
	hwConsumed int

	// OnPeriod runs on every period-elapsed notification (application
	// refill callback).
	OnPeriod func()

	// Counters.
	PeriodsElapsed uint64
	XRuns          uint64
}

var _ api.AudioKernel = (*PCM)(nil)

// Register adds a sound device.
func (m *Manager) Register(name string, dev api.AudioDevice) (*PCM, error) {
	if _, dup := m.pcms[name]; dup {
		return nil, fmt.Errorf("audio: device %q already registered", name)
	}
	p := &PCM{Name: name, mgr: m, dev: dev}
	m.pcms[name] = p
	return p, nil
}

// Unregister removes a sound device.
func (m *Manager) Unregister(name string) { delete(m.pcms, name) }

// PCMDev looks up a stream.
func (m *Manager) PCMDev(name string) (*PCM, error) {
	p, ok := m.pcms[name]
	if !ok {
		return nil, fmt.Errorf("audio: no device %q", name)
	}
	return p, nil
}

// Prepare configures the stream.
func (p *PCM) Prepare(rateHz, periodBytes, periods int) error {
	if rateHz <= 0 || periodBytes <= 0 || periods < 2 {
		return fmt.Errorf("audio: bad stream geometry")
	}
	if err := p.dev.PrepareStream(rateHz, periodBytes, periods); err != nil {
		return err
	}
	p.rate, p.periodBytes, p.periods = rateHz, periodBytes, periods
	p.prepared = true
	p.appWritten, p.hwConsumed = 0, 0
	return nil
}

// WritePeriod queues one period of samples.
func (p *PCM) WritePeriod(samples []byte) error {
	if !p.prepared {
		return fmt.Errorf("audio: stream not prepared")
	}
	if len(samples) != p.periodBytes {
		return fmt.Errorf("audio: period must be %d bytes", p.periodBytes)
	}
	if p.appWritten-p.hwConsumed >= p.periods {
		return fmt.Errorf("audio: ring full")
	}
	p.mgr.Acct.Charge(sim.Copy(len(samples)))
	idx := p.appWritten % p.periods
	if err := p.dev.WritePeriod(idx, samples); err != nil {
		return err
	}
	p.appWritten++
	return nil
}

// Start begins playback.
func (p *PCM) Start() error {
	if !p.prepared {
		return fmt.Errorf("audio: stream not prepared")
	}
	if err := p.dev.Trigger(true); err != nil {
		return err
	}
	p.running = true
	return nil
}

// Stop halts playback.
func (p *PCM) Stop() error {
	p.running = false
	return p.dev.Trigger(false)
}

// QueuedPeriods reports how many periods are buffered ahead of hardware.
func (p *PCM) QueuedPeriods() int { return p.appWritten - p.hwConsumed }

// --- api.AudioKernel ---------------------------------------------------------

// PeriodElapsed implements api.AudioKernel.
func (p *PCM) PeriodElapsed() {
	p.PeriodsElapsed++
	// Underrun: the hardware needed a period the application never
	// queued (checked before accounting the consumption — draining the
	// last queued period is not yet an underrun).
	if p.running && p.appWritten <= p.hwConsumed {
		p.XRuns++
	}
	p.hwConsumed++
	if p.OnPeriod != nil {
		p.OnPeriod()
	}
}

// XRun implements api.AudioKernel.
func (p *PCM) XRun() { p.XRuns++ }
