package audio

import (
	"fmt"
	"testing"

	"sud/internal/drivers/api"
	"sud/internal/sim"
)

// fakeDev records PCM ops.
type fakeDev struct {
	rate, pb, np int
	writes       map[int][]byte
	running      bool
	failPrepare  bool
}

func (d *fakeDev) PrepareStream(r, pb, np int) error {
	if d.failPrepare {
		return fmt.Errorf("nope")
	}
	d.rate, d.pb, d.np = r, pb, np
	d.writes = map[int][]byte{}
	return nil
}
func (d *fakeDev) WritePeriod(idx int, s []byte) error {
	d.writes[idx] = append([]byte(nil), s...)
	return nil
}
func (d *fakeDev) Trigger(start bool) error { d.running = start; return nil }
func (d *fakeDev) Pointer() (int, error)    { return 42, nil }

func newPCM(t *testing.T) (*Manager, *PCM, *fakeDev) {
	t.Helper()
	stats := sim.NewCPUStats(2)
	m := New(sim.NewLoop(), stats.Account("kernel"))
	dev := &fakeDev{}
	pcm, err := m.Register("hda0", dev)
	if err != nil {
		t.Fatal(err)
	}
	return m, pcm, dev
}

func TestRegisterAndLookup(t *testing.T) {
	m, pcm, _ := newPCM(t)
	if _, err := m.Register("hda0", &fakeDev{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, err := m.PCMDev("hda0")
	if err != nil || got != pcm {
		t.Fatal("lookup failed")
	}
	if _, err := m.PCMDev("nope"); err == nil {
		t.Fatal("phantom device found")
	}
	m.Unregister("hda0")
	if _, err := m.PCMDev("hda0"); err == nil {
		t.Fatal("unregistered device still found")
	}
}

func TestPrepareValidatesGeometry(t *testing.T) {
	_, pcm, dev := newPCM(t)
	for _, bad := range [][3]int{{0, 100, 2}, {48000, 0, 2}, {48000, 100, 1}} {
		if err := pcm.Prepare(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("geometry %v accepted", bad)
		}
	}
	dev.failPrepare = true
	if err := pcm.Prepare(48000, 100, 4); err == nil {
		t.Fatal("device failure not propagated")
	}
	dev.failPrepare = false
	if err := pcm.Prepare(48000, 100, 4); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRingAccounting(t *testing.T) {
	_, pcm, dev := newPCM(t)
	if err := pcm.WritePeriod(make([]byte, 8)); err == nil {
		t.Fatal("write before prepare accepted")
	}
	if err := pcm.Prepare(48000, 16, 3); err != nil {
		t.Fatal(err)
	}
	if err := pcm.WritePeriod(make([]byte, 8)); err == nil {
		t.Fatal("wrong-size period accepted")
	}
	for i := 0; i < 3; i++ {
		if err := pcm.WritePeriod(make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if pcm.QueuedPeriods() != 3 {
		t.Fatalf("queued = %d", pcm.QueuedPeriods())
	}
	if err := pcm.WritePeriod(make([]byte, 16)); err == nil {
		t.Fatal("write into a full ring accepted")
	}
	// Hardware consumes one period; the slot is reusable and indices
	// wrap.
	pcm.PeriodElapsed()
	if pcm.QueuedPeriods() != 2 {
		t.Fatalf("queued after consume = %d", pcm.QueuedPeriods())
	}
	if err := pcm.WritePeriod(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if len(dev.writes) != 3 { // indices 0,1,2 used; wrap reused 0
		t.Fatalf("device saw %d distinct slots", len(dev.writes))
	}
}

func TestUnderrunAccounting(t *testing.T) {
	_, pcm, _ := newPCM(t)
	if err := pcm.Prepare(48000, 16, 2); err != nil {
		t.Fatal(err)
	}
	if err := pcm.WritePeriod(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := pcm.Start(); err != nil {
		t.Fatal(err)
	}
	pcm.PeriodElapsed() // consumed the only queued period
	pcm.PeriodElapsed() // nothing queued: underrun
	if pcm.XRuns != 1 {
		t.Fatalf("xruns = %d", pcm.XRuns)
	}
	pcm.XRun()
	if pcm.XRuns != 2 {
		t.Fatal("explicit XRun not counted")
	}
	if err := pcm.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRequiresPrepare(t *testing.T) {
	_, pcm, dev := newPCM(t)
	if err := pcm.Start(); err == nil {
		t.Fatal("start before prepare accepted")
	}
	if dev.running {
		t.Fatal("device triggered")
	}
	var periods int
	pcm.OnPeriod = func() { periods++ }
	pcm.PeriodElapsed()
	if periods != 1 {
		t.Fatal("OnPeriod not invoked")
	}
}

var _ api.AudioDevice = (*fakeDev)(nil)
