package trace

import (
	"math"
	"sort"
	"testing"

	"sud/internal/sim"
)

func TestHistIndexValueMonotone(t *testing.T) {
	last := -1
	for _, d := range []sim.Duration{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 1 << 20, 1 << 30, 1 << 34, 1 << 40} {
		idx := histIndex(d)
		if idx < last {
			t.Fatalf("histIndex not monotone at %d: %d < %d", d, idx, last)
		}
		last = idx
		if d <= sim.Duration(1)<<histMaxExp {
			ub := histValue(idx)
			if ub < d {
				t.Fatalf("bucket upper bound %d below sample %d", ub, d)
			}
		}
	}
	if histIndex(-5) != 0 {
		t.Fatalf("negative duration should clamp to bucket 0")
	}
}

func TestHistPercentileError(t *testing.T) {
	// Compare against an exact sort over a deterministic pseudo-random set.
	var h Hist
	var vals []float64
	x := uint64(12345)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		d := sim.Duration(x % 2_000_000) // 0..2ms in ns
		h.Record(d)
		vals = append(vals, float64(d))
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		i := int(p*float64(len(vals))+0.5) - 1
		exact := vals[i]
		got := float64(h.Percentile(p))
		if exact > 0 && math.Abs(got-exact)/exact > 0.02 {
			t.Fatalf("p%.0f: hist %v vs exact %v (>2%% off)", p*100, got, exact)
		}
		if got < exact {
			t.Fatalf("p%.0f: hist %v under-reports exact %v", p*100, got, exact)
		}
	}
}

func TestHistSubMerge(t *testing.T) {
	var a, b Hist
	for i := 1; i <= 100; i++ {
		a.Record(sim.Duration(i * 1000))
	}
	snap := a
	for i := 1; i <= 100; i++ {
		a.Record(sim.Duration(i * 2000))
	}
	win := a.Sub(&snap)
	if win.Count() != 100 {
		t.Fatalf("window count = %d, want 100", win.Count())
	}
	b.Merge(&snap)
	b.Merge(&win)
	if b.Count() != a.Count() || b.Percentile(0.99) != a.Percentile(0.99) {
		t.Fatalf("merge of snapshot+window != full hist")
	}
	b.Reset()
	if b.Count() != 0 || b.Mean() != 0 {
		t.Fatalf("reset left samples behind")
	}
}
