package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sud/internal/sim"
)

func TestFlightRingEviction(t *testing.T) {
	loop := sim.NewLoop()
	f := NewFlight(loop, 4)
	for i := 0; i < 6; i++ {
		f.Recordf(FEvidence, "ev%d", i)
		loop.RunFor(sim.Microsecond)
	}
	evs := f.Events()
	if len(evs) != 4 || f.Total() != 6 {
		t.Fatalf("ring kept %d (total %d), want 4 (total 6)", len(evs), f.Total())
	}
	if evs[0].Detail != "ev2" || evs[3].Detail != "ev5" {
		t.Fatalf("eviction order wrong: %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not time-ordered: %+v", evs)
		}
	}
	var nilF *Flight
	nilF.Record(FKill, "x") // must not panic
	if nilF.Total() != 0 || nilF.Events() != nil || len(nilF.Kinds()) != 0 {
		t.Fatalf("nil flight should be inert")
	}
}

func TestFlightEncodeDecodeRoundTrip(t *testing.T) {
	evs := []FlightEvent{
		{At: 0, Kind: FKill, Detail: "nvmed pid 7"},
		{At: 12345, Kind: FPark, Detail: "q0: 3 inflight, 2 waiting"},
		{At: 99999999, Kind: FDrain, Detail: ""},
	}
	got, err := DecodeFlight(EncodeFlight(evs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, evs)
	}
	if _, err := DecodeFlight([]byte("not a flight ring")); err == nil {
		t.Fatalf("bad magic should error")
	}
	enc := EncodeFlight(evs)
	if _, err := DecodeFlight(enc[:len(enc)-3]); err == nil {
		t.Fatalf("truncated buffer should error")
	}
	if _, err := DecodeFlight(append(enc, 0xff)); err == nil {
		t.Fatalf("trailing bytes should error")
	}
}

func TestFormatFlightStable(t *testing.T) {
	evs := []FlightEvent{
		{At: 50_000_000, Kind: FKill, Detail: "nvmed"},
		{At: 50_001_500, Kind: FPark, Detail: "q1: 4 parked"},
		{At: 50_250_000, Kind: "bad\x01kind", Detail: "ctl\x1bchars"},
	}
	var b bytes.Buffer
	FormatFlight(&b, evs, 0)
	want := "" +
		"     50000.000us  kill       nvmed\n" +
		"     50001.500us  park       q1: 4 parked\n" +
		"     50250.000us  bad.kind   ctl.chars\n"
	if b.String() != want {
		t.Fatalf("format drifted:\n%s\nwant:\n%s", b.String(), want)
	}
	b.Reset()
	FormatFlight(&b, evs, 2)
	if !strings.Contains(b.String(), "1 earlier events elided") {
		t.Fatalf("lastN elision missing: %s", b.String())
	}
	b.Reset()
	FormatFlight(&b, nil, 0)
	if b.String() != "  (empty)\n" {
		t.Fatalf("empty format drifted: %q", b.String())
	}
}

// FuzzDecodeFlight: the dumper path (decode + format) must never panic on
// malformed ring contents, whatever bytes a hostile driver shell left.
func FuzzDecodeFlight(f *testing.F) {
	f.Add([]byte("SUDFR1"))
	f.Add(EncodeFlight([]FlightEvent{{At: 1, Kind: FKill, Detail: "x"}}))
	f.Add(EncodeFlight(nil))
	f.Add([]byte("SUDFR1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeFlight(data)
		if err != nil {
			return
		}
		var b bytes.Buffer
		FormatFlight(&b, evs, 16)
		// What decoded must re-encode and decode to the same events.
		again, err := DecodeFlight(EncodeFlight(evs))
		if err != nil {
			t.Fatalf("re-decode of valid events failed: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed event count: %d vs %d", len(again), len(evs))
		}
	})
}
