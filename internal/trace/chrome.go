package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sud/internal/sim"
)

// Chrome trace-event JSON (the chrome://tracing / Perfetto "traceEvents"
// array format). Export is hand-built in event-record order with integer
// microsecond math, so two same-seed runs produce byte-identical files —
// the determinism guarantee the trace plane inherits from sim.Time.

// ChromeJSON renders span events as a Chrome trace-event file. Each hop is
// an instant event: name = hop, cat = class, ts = virtual µs, pid = run + 1
// (one traced machine per pid), tid = queue, args carry the span tag.
func ChromeJSON(events []Event, dropped uint64) []byte {
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		ns := int64(ev.At)
		fmt.Fprintf(&b,
			"\n{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%d.%03d,\"pid\":%d,\"tid\":%d,\"args\":{\"tag\":%d}}",
			ev.Hop, ev.Class, ns/1000, ns%1000, ev.Run+1, ev.Queue, ev.Tag)
	}
	fmt.Fprintf(&b, "\n],\"otherData\":{\"clock\":\"sim\",\"droppedEvents\":%d}}\n", dropped)
	return b.Bytes()
}

type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	TS   float64 `json:"ts"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args struct {
		Tag uint64 `json:"tag"`
	} `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

const maxChromeEvents = 4 * MaxEvents

// ParseChromeJSON decodes a ChromeJSON file back into span events
// (sudtrace's input path). Defensive like DecodeFlight: malformed input
// yields an error, oversized input is rejected, and string fields are
// sanitized by the formatting layer, never trusted.
func ParseChromeJSON(data []byte) ([]Event, error) {
	var f chromeFile
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: bad chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) > maxChromeEvents {
		return nil, fmt.Errorf("trace: chrome trace has %d events (max %d)", len(f.TraceEvents), maxChromeEvents)
	}
	evs := make([]Event, 0, len(f.TraceEvents))
	for _, ce := range f.TraceEvents {
		evs = append(evs, Event{
			At:    sim.Time(ce.TS * float64(sim.Microsecond)),
			Class: ce.Cat,
			Hop:   ce.Name,
			Queue: ce.TID,
			Tag:   ce.Args.Tag,
			Run:   ce.PID - 1,
		})
	}
	return evs, nil
}

// HopStat is one hop-pair latency aggregate from Summarize.
type HopStat struct {
	Class    string
	From, To string
	Spans    uint64
	Hist     Hist
}

type spanKey struct {
	run   int
	class string
	queue int
	tag   uint64
}

// spanStart names the hop that begins a fresh request in each class. Tags
// are recycled (block tags, TX slots, RX ring IOVAs), so one (class, queue,
// tag) key carries many requests back to back — Summarize cuts the span at
// each start hop instead of pairing the old request's last hop with the new
// request's first.
var spanStart = map[string]string{
	ClassBlk:   HopSubmit,
	ClassNetRx: HopDevComplete,
	ClassNetTx: HopUchanEnq,
	ClassDev:   HopDevStart,
}

// Summarize groups span events by (class, queue, tag), orders each span's
// hops by time, and aggregates the latency of every adjacent hop pair —
// the per-hop breakdown sudtrace and sudctl print. Output order is
// deterministic: by class, then by first-hop name pair.
func Summarize(events []Event) []HopStat {
	spans := make(map[spanKey][]Event)
	var order []spanKey
	for _, ev := range events {
		k := spanKey{ev.Run, ev.Class, ev.Queue, ev.Tag}
		if _, ok := spans[k]; !ok {
			order = append(order, k)
		}
		spans[k] = append(spans[k], ev)
	}
	stats := make(map[[3]string]*HopStat)
	var statOrder [][3]string
	for _, k := range order {
		evs := spans[k]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		for i := 1; i < len(evs); i++ {
			if evs[i].Hop == spanStart[k.class] {
				continue
			}
			sk := [3]string{k.class, evs[i-1].Hop, evs[i].Hop}
			st, ok := stats[sk]
			if !ok {
				st = &HopStat{Class: k.class, From: evs[i-1].Hop, To: evs[i].Hop}
				stats[sk] = st
				statOrder = append(statOrder, sk)
			}
			st.Spans++
			st.Hist.Record(sim.Duration(evs[i].At - evs[i-1].At))
		}
	}
	sort.Slice(statOrder, func(i, j int) bool {
		a, b := statOrder[i], statOrder[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	out := make([]HopStat, 0, len(statOrder))
	for _, sk := range statOrder {
		out = append(out, *stats[sk])
	}
	return out
}

// FormatSummary writes Summarize output as a fixed-width table. Stable
// format, pinned by sudctl's golden test.
func FormatSummary(w io.Writer, stats []HopStat) {
	if len(stats) == 0 {
		fmt.Fprintf(w, "  (no spans)\n")
		return
	}
	fmt.Fprintf(w, "  %-7s %-12s -> %-12s %8s %10s %10s %10s\n",
		"class", "from", "to", "spans", "p50us", "p99us", "meanus")
	for _, st := range stats {
		fmt.Fprintf(w, "  %-7s %-12s -> %-12s %8d %10.3f %10.3f %10.3f\n",
			sanitize(st.Class), sanitize(st.From), sanitize(st.To), st.Spans,
			st.Hist.PercentileUS(0.50), st.Hist.PercentileUS(0.99),
			float64(st.Hist.Mean())/float64(sim.Microsecond))
	}
}
