package trace

import (
	"math/bits"

	"sud/internal/sim"
)

// Log-linear bucketing: exact for durations under 2^histSubBits ns, then 64
// sub-buckets per octave up to ~17 s, everything larger clamped into the
// last bucket. Worst-case relative quantization error is 1/64 ≈ 1.6%, well
// inside the ±15% benchgate bands and the recovery/failover SLO margins.
const (
	histSubBits = 6
	histSub     = 1 << histSubBits // sub-buckets per octave
	histMaxExp  = 34               // top octave: ~2^34 ns ≈ 17 s
	// histBuckets = linear region + one histSub-wide band per shift step.
	histBuckets = histSub + (histMaxExp-histSubBits)*histSub
)

// Hist is a fixed-bucket log-linear latency histogram over sim.Duration.
// It is a value type: snapshot with plain assignment, window with Sub.
// Recording charges nothing and schedules nothing, so always-on histograms
// are invisible in virtual time.
type Hist struct {
	counts [histBuckets + 1]uint64
	n      uint64
	sum    sim.Duration
}

func histIndex(d sim.Duration) int {
	if d < histSub {
		if d < 0 {
			return 0
		}
		return int(d)
	}
	shift := bits.Len64(uint64(d)) - 1 - histSubBits
	idx := histSub*shift + int(uint64(d)>>uint(shift))
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// histValue returns the upper bound of bucket idx — the value reported for
// percentiles landing in it (conservative: never under-reports latency).
func histValue(idx int) sim.Duration {
	if idx < histSub {
		return sim.Duration(idx)
	}
	shift := (idx - histSub) / histSub
	mant := histSub + (idx-histSub)%histSub
	return sim.Duration(mant+1)<<uint(shift) - 1
}

// Record adds one latency sample.
func (h *Hist) Record(d sim.Duration) {
	h.counts[histIndex(d)]++
	h.n++
	h.sum += d
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the exact mean of recorded samples (sum is kept unbucketed).
func (h *Hist) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Percentile returns the p-quantile (0..1) by nearest rank over buckets,
// 0 when empty. Matches the rank convention of the sort-based percentile
// it replaced: rank = round(p*n) clamped to [1, n].
func (h *Hist) Percentile(p float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return histValue(i)
		}
	}
	return histValue(histBuckets)
}

// PercentileUS returns Percentile in microseconds.
func (h *Hist) PercentileUS(p float64) float64 {
	return float64(h.Percentile(p)) / float64(sim.Microsecond)
}

// Sub returns the window delta h − prev (for prev an earlier snapshot of
// the same histogram).
func (h *Hist) Sub(prev *Hist) Hist {
	var d Hist
	for i := range h.counts {
		d.counts[i] = h.counts[i] - prev.counts[i]
	}
	d.n = h.n - prev.n
	d.sum = h.sum - prev.sum
	return d
}

// Merge adds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }
