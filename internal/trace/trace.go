// Package trace is the virtual-time observability plane: per-request spans,
// per-queue latency histograms, and the supervisor flight recorder. It is
// built directly on the deterministic sim clock, so every artifact it
// produces — a Chrome trace, a percentile row, a recovery timeline — is
// bit-identical across runs with the same seed.
//
// The plane has three parts with two cost disciplines:
//
//   - Histograms (Hist) and cross-layer birth stamps (Mark/TakeMark) are
//     ALWAYS ON and charge nothing: sim.CPUAccount.Charge is the only way
//     simulated work exists, and recording never calls it nor schedules a
//     loop event, so the metrics plane is invisible in virtual time. This is
//     what lets BENCH_rx/BENCH_blk carry per-queue p50/p99 while the Figure 8
//     Q=1 numbers stay bit-for-bit at their paper values.
//   - Span events (Event) are OFF by default. When enabled, each recorded
//     hop charges sim.CostTraceEvent to a dedicated "trace" CPU account —
//     the tracing overhead is modelled honestly and shows up in CPU
//     utilisation, while throughput stays untouched (charges never advance
//     the clock; only scheduled events do).
//
// A span is keyed by (class, queue, tag) using the identity each layer
// already threads: the kernel block tag for block requests, the shared-pool
// slot for net TX, the buffer IOVA for net RX, the device-local command ID
// on the device engine's own track. The hop taxonomy is fixed (Hop*
// constants) so cmd/sudtrace can pair adjacent hops into per-hop latency
// breakdowns without per-site knowledge.
package trace

import (
	"sud/internal/sim"
)

// Span classes: the request populations spans are keyed under.
const (
	ClassBlk   = "blk"     // block request, tag = kernel block tag
	ClassNetRx = "net-rx"  // received frame, tag = buffer IOVA
	ClassNetTx = "net-tx"  // transmitted frame, tag = shared TX slot
	ClassDev   = "dev"     // device engine's own track, tag = device CID/index
)

// Span hops, in causal order along the request path. Not every class visits
// every hop; sudtrace pairs whatever adjacent hops a span recorded.
const (
	HopSubmit      = "submit"       // kernel core accepted the request
	HopUchanEnq    = "uchan.enq"    // proxy queued the upcall on the ring
	HopUchanDeq    = "uchan.deq"    // driver process dequeued it
	HopDoorbell    = "doorbell"     // driver rang (or staged) the device doorbell
	HopDevStart    = "dev.start"    // device engine started the command
	HopDevComplete = "dev.complete" // device engine posted the completion
	HopDrvComplete = "drv.complete" // driver observed the completion
	HopGuard       = "guard.copy"   // proxy guard-copied the payload
	HopFlip        = "guard.flip"   // proxy took the page-flip zero-copy path
	HopComplete    = "complete"     // kernel core delivered the completion
	HopDeliver     = "deliver"      // stack delivered the payload to the socket
)

// MaxEvents bounds the span buffer; past it events are counted as dropped
// rather than grown without bound (a flood with tracing on is finite).
const MaxEvents = 1 << 20

// Event is one span hop observation. Run distinguishes the traced machine
// when events from several runs are merged into one export (sudbench traces
// each benchmark row on its own machine, and tags recur across machines);
// the tracer itself always records 0.
type Event struct {
	At    sim.Time
	Class string
	Hop   string
	Queue int
	Tag   uint64
	Run   int
}

type markKey struct {
	class string
	queue int
	tag   uint64
}

// Tracer is one machine's span plane plus the cross-layer stamp table. All
// methods are nil-receiver safe so instrumentation sites need no guards.
type Tracer struct {
	loop *sim.Loop
	acct *sim.CPUAccount

	enabled bool
	events  []Event
	dropped uint64

	marks map[markKey]sim.Time
}

// New creates a tracer charging span-event costs to a dedicated "trace"
// account on cpu. The span plane starts disabled.
func New(loop *sim.Loop, cpu *sim.CPUStats) *Tracer {
	return &Tracer{loop: loop, acct: cpu.Account("trace"), marks: make(map[markKey]sim.Time)}
}

// Enable turns the span plane on: Event calls record and charge from now on.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled = true
	}
}

// Disable turns the span plane off (recorded events are kept).
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled = false
	}
}

// Enabled reports whether span events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Event records one span hop, charging sim.CostTraceEvent to the trace
// account. It is a no-op (and charges nothing) when the span plane is off.
func (t *Tracer) Event(class string, q int, tag uint64, hop string) {
	if t == nil || !t.enabled {
		return
	}
	t.acct.Charge(sim.CostTraceEvent)
	if len(t.events) >= MaxEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{At: t.loop.Now(), Class: class, Hop: hop, Queue: q, Tag: tag})
}

// Events returns the recorded span events in record order (not a copy).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped reports span events lost to the MaxEvents cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// ResetEvents drops the recorded span buffer (the stamp table survives — it
// tracks in-flight requests, not history).
func (t *Tracer) ResetEvents() {
	if t == nil {
		return
	}
	t.events = nil
	t.dropped = 0
}

// Mark stamps (class, q, tag) with the current virtual time. It is part of
// the always-on metrics plane: zero charges, no events — the device-side
// birth stamp a downstream layer turns into an end-to-end latency sample.
// Re-marking an existing key overwrites it (buffer reuse).
func (t *Tracer) Mark(class string, q int, tag uint64) {
	if t == nil {
		return
	}
	t.marks[markKey{class, q, tag}] = t.loop.Now()
}

// TakeMark removes and returns the stamp for (class, q, tag).
func (t *Tracer) TakeMark(class string, q int, tag uint64) (sim.Time, bool) {
	if t == nil {
		return 0, false
	}
	k := markKey{class, q, tag}
	at, ok := t.marks[k]
	if ok {
		delete(t.marks, k)
	}
	return at, ok
}

// TakeLat pops the stamp and returns the virtual time elapsed since it was
// placed. Call sites record the result straight into a histogram without
// needing their own handle on the clock.
func (t *Tracer) TakeLat(class string, q int, tag uint64) (sim.Duration, bool) {
	at, ok := t.TakeMark(class, q, tag)
	if !ok {
		return 0, false
	}
	return t.loop.Now() - at, true
}
