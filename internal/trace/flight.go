package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"sud/internal/sim"
)

// Flight-recorder event kinds, roughly in the order a recovery emits them.
// The supervisor, the policy engine, and blockdev all record into one
// shared per-device ring, so a dump reads as a single causal timeline:
// kill → park → detect → evidence → verdict → respawn → adopt → replay →
// drain (or evidence → verdict → quarantine).
const (
	FKill       = "kill"       // driver process died or was killed
	FPark       = "park"       // kernel parked queues pending recovery
	FDetect     = "detect"     // supervisor noticed (death, wedge, conviction)
	FEvidence   = "evidence"   // non-trivial evidence observation
	FVerdict    = "verdict"    // policy engine graded the failure
	FBackoff    = "backoff"    // restart delayed by the backoff ladder
	FRespawn    = "respawn"    // fresh incarnation spawned and probing
	FPromote    = "promote"    // hot standby promoted in place of a respawn
	FAdopt      = "adopt"      // new incarnation adopted the live device
	FReplay     = "replay"     // parked in-flight requests re-submitted
	FDrain      = "drain"      // every pre-kill request has completed
	FQuarantine = "quarantine" // device fenced, driver given up on
)

// FlightEvent is one flight-recorder entry.
type FlightEvent struct {
	At     sim.Time
	Kind   string
	Detail string
}

// FlightSize is the default ring capacity: enough for several full
// recovery sequences plus the evidence chatter around them.
const FlightSize = 128

// Flight is a bounded ring of FlightEvents. Recording charges nothing and
// schedules nothing — like the histograms it is always on and invisible in
// virtual time. Nil-receiver safe.
type Flight struct {
	loop  *sim.Loop
	size  int
	evs   []FlightEvent
	start int    // index of oldest event
	total uint64 // lifetime count, including evicted
}

// NewFlight creates a flight recorder keeping the last size events.
func NewFlight(loop *sim.Loop, size int) *Flight {
	if size < 1 {
		size = FlightSize
	}
	return &Flight{loop: loop, size: size}
}

// Record appends one event, evicting the oldest past capacity.
func (f *Flight) Record(kind, detail string) {
	if f == nil {
		return
	}
	ev := FlightEvent{At: f.loop.Now(), Kind: kind, Detail: detail}
	if len(f.evs) < f.size {
		f.evs = append(f.evs, ev)
	} else {
		f.evs[f.start] = ev
		f.start = (f.start + 1) % f.size
	}
	f.total++
}

// Recordf is Record with a formatted detail.
func (f *Flight) Recordf(kind, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events oldest-first.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.evs))
	out = append(out, f.evs[f.start:]...)
	out = append(out, f.evs[:f.start]...)
	return out
}

// Total returns the lifetime event count including evicted ones.
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.total
}

// Kinds returns just the event kinds oldest-first — what timeline tests
// assert sequences against.
func (f *Flight) Kinds() []string {
	evs := f.Events()
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

// Wire format for dumped rings: "SUDFR1" magic, varint count, then per
// event varint(At) varint(len(kind)) kind varint(len(detail)) detail.
// DecodeFlight is defensive — sudctl dumps rings harvested from untrusted
// driver shells, so malformed bytes must produce an error, never a panic
// or an absurd allocation.
const flightMagic = "SUDFR1"

const (
	maxFlightEvents = 1 << 16
	maxFlightKind   = 64
	maxFlightDetail = 4096
)

// EncodeFlight serialises events in order.
func EncodeFlight(evs []FlightEvent) []byte {
	buf := []byte(flightMagic)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.AppendUvarint(buf, uint64(ev.At))
		buf = binary.AppendUvarint(buf, uint64(len(ev.Kind)))
		buf = append(buf, ev.Kind...)
		buf = binary.AppendUvarint(buf, uint64(len(ev.Detail)))
		buf = append(buf, ev.Detail...)
	}
	return buf
}

// DecodeFlight parses an EncodeFlight buffer, rejecting malformed input
// with an error (bounded counts and lengths, no panics).
func DecodeFlight(buf []byte) ([]FlightEvent, error) {
	if len(buf) < len(flightMagic) || string(buf[:len(flightMagic)]) != flightMagic {
		return nil, fmt.Errorf("trace: bad flight-recorder magic")
	}
	buf = buf[len(flightMagic):]
	count, n := binary.Uvarint(buf)
	if n <= 0 || count > maxFlightEvents {
		return nil, fmt.Errorf("trace: bad flight-recorder event count")
	}
	buf = buf[n:]
	readStr := func(max uint64) (string, error) {
		l, n := binary.Uvarint(buf)
		if n <= 0 || l > max || uint64(len(buf)-n) < l {
			return "", fmt.Errorf("trace: truncated flight-recorder string")
		}
		s := string(buf[n : n+int(l)])
		buf = buf[n+int(l):]
		return s, nil
	}
	evs := make([]FlightEvent, 0, min(count, 256))
	for i := uint64(0); i < count; i++ {
		at, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("trace: truncated flight-recorder event")
		}
		buf = buf[n:]
		kind, err := readStr(maxFlightKind)
		if err != nil {
			return nil, err
		}
		detail, err := readStr(maxFlightDetail)
		if err != nil {
			return nil, err
		}
		evs = append(evs, FlightEvent{At: sim.Time(at), Kind: kind, Detail: detail})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("trace: trailing bytes after flight-recorder events")
	}
	return evs, nil
}

// sanitize keeps dumper output terminal-safe whatever bytes a hostile ring
// held: non-printable runes are replaced.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r < 0x20 || r == 0x7f || r == 0xFFFD {
			return '.'
		}
		return r
	}, s)
}

// FormatFlight writes the last n events (all if n <= 0) as a fixed-width
// timeline. The format is stable — sudctl's golden test pins it.
func FormatFlight(w io.Writer, evs []FlightEvent, n int) {
	if n > 0 && len(evs) > n {
		fmt.Fprintf(w, "  ... %d earlier events elided\n", len(evs)-n)
		evs = evs[len(evs)-n:]
	}
	if len(evs) == 0 {
		fmt.Fprintf(w, "  (empty)\n")
		return
	}
	for _, ev := range evs {
		fmt.Fprintf(w, "  %12.3fus  %-10s %s\n",
			float64(ev.At)/float64(sim.Microsecond), sanitize(ev.Kind), sanitize(ev.Detail))
	}
}
