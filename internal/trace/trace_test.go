package trace

import (
	"bytes"
	"testing"

	"sud/internal/sim"
)

func testTracer() (*Tracer, *sim.Loop, *sim.CPUStats) {
	loop := sim.NewLoop()
	cpu := sim.NewCPUStats(4)
	return New(loop, cpu), loop, cpu
}

func TestTracerDisabledIsFree(t *testing.T) {
	tr, loop, cpu := testTracer()
	tr.Event(ClassBlk, 0, 1, HopSubmit)
	loop.RunFor(sim.Microsecond)
	tr.Event(ClassBlk, 0, 1, HopComplete)
	if len(tr.Events()) != 0 {
		t.Fatalf("disabled tracer recorded events")
	}
	if cpu.Account("trace").Busy() != 0 {
		t.Fatalf("disabled tracer charged CPU")
	}
	var nilT *Tracer
	nilT.Event(ClassBlk, 0, 1, HopSubmit) // must not panic
	nilT.Mark(ClassNetRx, 0, 2)
	if _, ok := nilT.TakeMark(ClassNetRx, 0, 2); ok {
		t.Fatalf("nil tracer returned a mark")
	}
	if nilT.Enabled() || nilT.Dropped() != 0 || nilT.Events() != nil {
		t.Fatalf("nil tracer should be inert")
	}
}

func TestTracerEnabledRecordsAndCharges(t *testing.T) {
	tr, loop, cpu := testTracer()
	tr.Enable()
	tr.Event(ClassBlk, 1, 7, HopSubmit)
	loop.RunFor(3 * sim.Microsecond)
	tr.Event(ClassBlk, 1, 7, HopComplete)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[1].At-evs[0].At != sim.Time(3*sim.Microsecond) {
		t.Fatalf("span delta = %d, want 3us", evs[1].At-evs[0].At)
	}
	if got := cpu.Account("trace").Busy(); got != 2*sim.CostTraceEvent {
		t.Fatalf("trace account busy = %d, want %d", got, 2*sim.CostTraceEvent)
	}
	tr.Disable()
	tr.Event(ClassBlk, 1, 7, HopDeliver)
	if len(tr.Events()) != 2 {
		t.Fatalf("disable did not stop recording")
	}
	tr.ResetEvents()
	if len(tr.Events()) != 0 {
		t.Fatalf("reset left events")
	}
}

func TestTracerMarks(t *testing.T) {
	tr, loop, _ := testTracer()
	tr.Mark(ClassNetRx, 2, 0x3000) // always on, even with spans disabled
	loop.RunFor(5 * sim.Microsecond)
	at, ok := tr.TakeMark(ClassNetRx, 2, 0x3000)
	if !ok || loop.Now()-at != sim.Time(5*sim.Microsecond) {
		t.Fatalf("mark delta wrong: ok=%v delta=%d", ok, loop.Now()-at)
	}
	if _, ok := tr.TakeMark(ClassNetRx, 2, 0x3000); ok {
		t.Fatalf("TakeMark did not consume the mark")
	}
	// Re-marking the same key (buffer reuse) overwrites.
	tr.Mark(ClassNetRx, 2, 0x3000)
	loop.RunFor(sim.Microsecond)
	tr.Mark(ClassNetRx, 2, 0x3000)
	at, _ = tr.TakeMark(ClassNetRx, 2, 0x3000)
	if at != loop.Now() {
		t.Fatalf("re-mark did not overwrite")
	}
}

func TestChromeJSONDeterministicRoundTrip(t *testing.T) {
	run := func() []byte {
		tr, loop, _ := testTracer()
		tr.Enable()
		for i := 0; i < 10; i++ {
			tr.Event(ClassBlk, i%2, uint64(i), HopSubmit)
			loop.RunFor(sim.Duration(i+1) * 700) // odd ns: exercises sub-µs ts
			tr.Event(ClassBlk, i%2, uint64(i), HopComplete)
		}
		return ChromeJSON(tr.Events(), tr.Dropped())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed chrome export not byte-identical")
	}
	evs, err := ParseChromeJSON(a)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(evs) != 20 {
		t.Fatalf("parsed %d events, want 20", len(evs))
	}
	if evs[0].Class != ClassBlk || evs[0].Hop != HopSubmit || evs[1].Hop != HopComplete {
		t.Fatalf("parsed fields wrong: %+v", evs[:2])
	}
	if _, err := ParseChromeJSON([]byte("{")); err == nil {
		t.Fatalf("malformed JSON should error")
	}
}

func TestSummarizePairsAdjacentHops(t *testing.T) {
	evs := []Event{
		{At: 0, Class: ClassBlk, Hop: HopSubmit, Queue: 0, Tag: 1},
		{At: 1000, Class: ClassBlk, Hop: HopDoorbell, Queue: 0, Tag: 1},
		{At: 5000, Class: ClassBlk, Hop: HopComplete, Queue: 0, Tag: 1},
		{At: 100, Class: ClassBlk, Hop: HopSubmit, Queue: 1, Tag: 1}, // distinct span: other queue
		{At: 1300, Class: ClassBlk, Hop: HopDoorbell, Queue: 1, Tag: 1},
	}
	stats := Summarize(evs)
	if len(stats) != 2 {
		t.Fatalf("got %d hop pairs, want 2: %+v", len(stats), stats)
	}
	if stats[0].From != HopDoorbell || stats[0].To != HopComplete || stats[0].Spans != 1 {
		t.Fatalf("pair order/count wrong: %+v", stats[0])
	}
	if stats[1].From != HopSubmit || stats[1].To != HopDoorbell || stats[1].Spans != 2 {
		t.Fatalf("submit->doorbell should aggregate both spans: %+v", stats[1])
	}
	var b bytes.Buffer
	FormatSummary(&b, stats)
	if b.Len() == 0 {
		t.Fatalf("empty summary output")
	}
	b.Reset()
	FormatSummary(&b, nil)
	if b.String() != "  (no spans)\n" {
		t.Fatalf("empty-case format drifted: %q", b.String())
	}
}

// FuzzParseChromeTrace: sudtrace reads files from disk; arbitrary bytes
// must never panic the parser or the summarizer.
func FuzzParseChromeTrace(f *testing.F) {
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add(ChromeJSON([]Event{{At: 1, Class: ClassBlk, Hop: HopSubmit, Queue: 0, Tag: 9}}, 0))
	f.Add([]byte(`{"traceEvents":[{"name":"x","cat":"y","ts":-1e308,"tid":-5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ParseChromeJSON(data)
		if err != nil {
			return
		}
		var b bytes.Buffer
		FormatSummary(&b, Summarize(evs))
	})
}
