module sud

go 1.24
