// Block storage quickstart: boot a simulated machine, run the unmodified
// nvmed driver in an untrusted SUD process, and move data through the
// kernel block layer — writes staged in per-queue shared slots, reads
// returned as validated, guard-copied completion references. Then kill -9
// the driver process mid-flight and restart it: the kernel shrugs, and the
// data is still on the media.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sud/internal/diskperf"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/sim"
	"sud/internal/sudml"
)

func main() {
	// The testbed assembles the storage DUT: NVMe-lite controller with
	// two I/O queue pairs, the nvmed driver in an untrusted user-space
	// process, two uchan ring pairs, and the k.Blk block core.
	tb, err := diskperf.NewTestbed(diskperf.ModeSUD, 2, hw.DefaultPlatform())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver process %q running under uid %d\n", tb.Proc.Name, tb.Proc.UID)
	fmt.Printf("device %s: %d blocks × %d B across %d queue pairs\n",
		tb.Dev.Name, tb.Dev.Geom.Blocks, tb.Dev.Geom.BlockSize, tb.Dev.NumQueues())

	// Write a few blocks, then read them back.
	blocks := []uint64{3, 700, 1500}
	for i, lba := range blocks {
		payload := bytes.Repeat([]byte{byte(0xA0 + i)}, tb.Dev.Geom.BlockSize)
		lba := lba
		if err := tb.Dev.WriteAt(lba, payload, func(err error) {
			if err != nil {
				log.Fatalf("write %d: %v", lba, err)
			}
			fmt.Printf("  block %4d written\n", lba)
		}); err != nil {
			log.Fatal(err)
		}
	}
	tb.M.Loop.RunFor(5 * sim.Millisecond)

	readBack := func(dev interface {
		ReadAt(uint64, func([]byte, error)) error
	}, tag string) {
		for i, lba := range blocks {
			want := byte(0xA0 + i)
			lba := lba
			if err := dev.ReadAt(lba, func(data []byte, err error) {
				if err != nil {
					log.Fatalf("read %d: %v", lba, err)
				}
				fmt.Printf("  block %4d read back %s: %d bytes of %#02x ok=%v\n",
					lba, tag, len(data), want, data[0] == want && data[len(data)-1] == want)
			}); err != nil {
				log.Fatal(err)
			}
		}
		tb.M.Loop.RunFor(5 * sim.Millisecond)
	}
	readBack(tb.Dev, "through the untrusted driver")

	// The §4.1 story, storage edition: kill -9 the driver process. The
	// uchan dies, the IOMMU domain empties (the controller can DMA
	// nowhere), and the block device disappears — the kernel is unharmed.
	fmt.Println("\nkill -9 the driver process...")
	tb.Proc.Kill()
	if _, err := tb.K.Blk.Dev("nvme0"); err != nil {
		fmt.Printf("  block device gone, kernel fine: %v\n", err)
	}

	// A fresh process binds the same controller and the media is intact.
	fmt.Println("restart a fresh driver process...")
	proc2, err := sudml.StartQ(tb.K, tb.Ctrl, nvmed.NewQ(2), "nvmed", 1004, 2)
	if err != nil {
		log.Fatal(err)
	}
	dev2, err := tb.K.Blk.Dev("nvme0")
	if err != nil {
		log.Fatal(err)
	}
	if err := dev2.Up(); err != nil {
		log.Fatal(err)
	}
	readBack(dev2, "after restart")

	st := proc2.Chan.Stats()
	fmt.Printf("\nuchan traffic since restart: %d upcalls, %d downcalls, %d wakeups\n",
		st.Upcalls, st.Downcalls, st.Wakeups)
}
