// Wifi-scan: run the unmodified iwlagn wireless driver in an untrusted SUD
// process, scan the airspace, associate with an access point, and exchange
// data frames — the paper's 802.11 use case (§4), including the mirrored
// scan/association state the wireless proxy synchronises (§3.3).
package main

import (
	"fmt"
	"log"

	"sud/internal/devices/wifi"
	"sud/internal/drivers/iwl"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

func main() {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)

	// The airspace: two APs, one of which bridges our uplink frames.
	home := &wifi.AP{SSID: "csail", BSSID: [6]byte{0xAA, 1, 2, 3, 4, 5}, Channel: 6, Signal: -38}
	cafe := &wifi.AP{SSID: "cafe-guest", BSSID: [6]byte{0xAA, 6, 7, 8, 9, 10}, Channel: 11, Signal: -77}
	air := &wifi.Air{APs: []*wifi.AP{home, cafe}}

	card := wifi.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{0x00, 0x21, 0x6A, 0xDE, 0xAD, 0x01}, air)
	m.AttachDevice(card)

	proc, err := sudml.Start(k, card, iwl.New(), "iwlagn", 1001)
	if err != nil {
		log.Fatal(err)
	}
	ifc, err := k.Wifi.Iface("wlan0")
	if err != nil {
		log.Fatal(err)
	}
	if err := ifc.Up(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wlan0 up; driver process %q (uid %d), features %#x (mirrored)\n",
		proc.Name, proc.UID, ifc.Features)

	// Scan.
	if err := ifc.Scan(); err != nil {
		log.Fatal(err)
	}
	m.Loop.RunFor(30 * sim.Millisecond)
	fmt.Println("\nscan results:")
	for _, b := range ifc.LastScan {
		fmt.Printf("  %-12s ch %2d  %d dBm  %02x:%02x:%02x:%02x:%02x:%02x\n",
			b.SSID, b.Channel, b.Signal,
			b.BSSID[0], b.BSSID[1], b.BSSID[2], b.BSSID[3], b.BSSID[4], b.BSSID[5])
	}

	// Associate and send a frame; the AP bridge prints what it hears.
	home.Bridge = func(f []byte) { fmt.Printf("\nAP %q received %d-byte frame: %q\n", home.SSID, len(f), f) }
	if err := ifc.Associate("csail"); err != nil {
		log.Fatal(err)
	}
	m.Loop.RunFor(10 * sim.Millisecond)
	fmt.Printf("associated with %q (carrier %v)\n", ifc.AssocSSID, ifc.Carrier)

	if err := ifc.SendFrame([]byte("hello from an untrusted driver")); err != nil {
		log.Fatal(err)
	}
	m.Loop.RunFor(5 * sim.Millisecond)

	// Downlink.
	ifc.OnRxFrame = func(f []byte) { fmt.Printf("station received: %q\n", f) }
	card.DeliverFromAP([]byte("welcome to csail"))
	m.Loop.RunFor(5 * sim.Millisecond)

	fmt.Printf("\nmirror updates through the wireless proxy: %d\n", proc.Wifi.MirrorUpdates)
}
