// Packet-filter: the paper's §6 "Applications" use case. The Click modular
// router runs as a kernel module "so that it has direct access to packets as
// they are received by the network card. With SUD, these applications could
// run as untrusted SUD-UML driver processes, with direct access to hardware,
// and achieve good performance without the security threat."
//
// This example is such an application: not a Linux driver at all, but a
// user-space process that is handed the e1000's device files and programs
// the RX ring itself, counting and classifying frames straight off the
// hardware — while the IOMMU confines it exactly like any driver process.
package main

import (
	"fmt"
	"log"

	"sud/internal/devices/e1000"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/proxy/pciaccess"
	"sud/internal/sim"
)

const ringLen = 64

func main() {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	link.Connect(nic, sink{})
	nic.AttachLink(link, 0)

	// The administrator hands this application the device files — the
	// same confinement surface a driver process gets.
	acct := m.CPU.Account("app:packet-filter")
	df := pciaccess.Open(k, nic, 2001, acct)

	// The application's own minimal datapath: enable the device, map its
	// registers, build an RX ring in its own DMA memory.
	if err := df.ConfigWrite(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster); err != nil {
		log.Fatal(err)
	}
	mmio, err := df.MapMMIO(0)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := df.AllocDMA(ringLen*e1000.DescSize, "app RX ring", true)
	if err != nil {
		log.Fatal(err)
	}
	bufs, err := df.AllocDMA(ringLen*2048, "app RX buffers", false)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < ringLen; i++ {
		var d [e1000.DescSize]byte
		addr := uint64(bufs.IOVA) + uint64(i*2048)
		for b := 0; b < 8; b++ {
			d[b] = byte(addr >> (8 * b))
		}
		m.Mem.MustWrite(ring.Phys+mem.Addr(i*e1000.DescSize), d[:])
	}
	mmio.Write32(e1000.RegCTRL, e1000.CtrlSLU)
	mmio.Write32(e1000.RegRDBAL, uint32(ring.IOVA))
	mmio.Write32(e1000.RegRDLEN, ringLen*e1000.DescSize)
	mmio.Write32(e1000.RegRDH, 0)
	mmio.Write32(e1000.RegRDT, ringLen-1)
	mmio.Write32(e1000.RegRCTL, e1000.RctlEN)

	// Poll-mode packet processing (Click style): classify UDP vs other.
	var udp, other, bytes int
	next := uint32(0)
	poll := func() {
		for {
			desc := make([]byte, e1000.DescSize)
			m.Mem.MustRead(ring.Phys+mem.Addr(next*e1000.DescSize), desc)
			if desc[12]&e1000.RxStaDD == 0 {
				return
			}
			n := int(desc[8]) | int(desc[9])<<8
			frame := make([]byte, n)
			m.Mem.MustRead(bufs.Phys+mem.Addr(next*2048), frame)
			bytes += n
			if _, ipPkt, err := netstack.ParseEth(frame); err == nil {
				if ih, _, err := netstack.ParseIPv4(ipPkt); err == nil && ih.Proto == netstack.ProtoUDP {
					udp++
				} else {
					other++
				}
			} else {
				other++
			}
			desc[12] = 0
			m.Mem.MustWrite(ring.Phys+mem.Addr(next*e1000.DescSize), desc)
			mmio.Write32(e1000.RegRDT, next)
			next = (next + 1) % ringLen
		}
	}
	var tick func()
	tick = func() { poll(); m.Loop.After(20*sim.Microsecond, tick) }
	tick()

	// Traffic: 300 mixed frames from the wire.
	src := netstack.MAC{2, 0, 0, 0, 0, 2}
	dst := netstack.MAC{2, 0, 0, 0, 0, 1}
	for i := 0; i < 300; i++ {
		var f []byte
		if i%3 == 0 {
			f = netstack.BuildTCPFrame(src, dst, netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
				netstack.TCPHeader{SrcPort: 1, DstPort: 2, Flags: netstack.TCPAck}, make([]byte, 100))
		} else {
			f = netstack.BuildUDPFrame(src, dst, netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
				1, 2, make([]byte, 100))
		}
		m.Loop.After(sim.Duration(i)*30*sim.Microsecond, func() { _ = link.Send(1, f) })
	}
	m.Loop.RunFor(20 * sim.Millisecond)

	fmt.Printf("packet-filter app (uid 2001, direct hardware access):\n")
	fmt.Printf("  classified %d UDP + %d other frames, %d bytes total\n", udp, other, bytes)
	fmt.Printf("  app CPU: %v; IOMMU confinement: %d pages, %d faults\n",
		sim.Time(acct.Busy()), df.Dom.Pages(), len(m.IOMMU.Faults()))
	fmt.Printf("  device RX drops (ring kept full by the app): %d\n", nic.RxDropsNoDesc)
}

type sink struct{}

func (sink) LinkDeliver([]byte) {}
