// Supervised-recovery: the shadow-driver extension the paper points at (§2).
// A supervisor watches the untrusted e1000e driver process; when the driver
// wedges mid-traffic, the supervisor detects it through the interruptible
// ioctl probe, kills the process, starts a fresh generation, and replays the
// interface configuration — applications observe a stall, not an outage.
package main

import (
	"fmt"
	"log"

	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sudml"
)

func main() {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte(netperf.DUTMAC), e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	remote := netperf.NewRemote(m.Loop, link, 1)
	remote.Turnaround = 30 * sim.Microsecond
	link.Connect(nic, remote)
	nic.AttachLink(link, 0)

	sup, err := sudml.Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		log.Fatal(err)
	}
	sup.OnRestart = func(gen int) {
		fmt.Printf("[%v] supervisor restarted the driver (generation %d)\n", m.Now(), gen)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		log.Fatal(err)
	}
	if err := ifc.Up(netperf.DUTIP); err != nil {
		log.Fatal(err)
	}

	// A small application: one echo ping per millisecond.
	var sent, echoed int
	if _, err := k.Net.UDPBind(5000, func([]byte, netstack.IP, uint16) { echoed++ }); err != nil {
		log.Fatal(err)
	}
	var tick func()
	tick = func() {
		if cur, err := k.Net.Iface("eth0"); err == nil && cur.IsUp() {
			if k.Net.UDPSendTo(cur, netperf.RemoteMAC, netperf.RemoteIP,
				5000, netperf.PortRR, []byte("beat")) == nil {
				sent++
			}
		}
		m.Loop.After(sim.Millisecond, tick)
	}
	tick()

	m.Loop.RunFor(50 * sim.Millisecond)
	fmt.Printf("[%v] healthy: %d/%d heartbeats echoed\n", m.Now(), echoed, sent)

	fmt.Printf("[%v] driver wedges (infinite loop)...\n", m.Now())
	sup.Proc().Hang()
	m.Loop.RunFor(100 * sim.Millisecond)

	fmt.Printf("[%v] after recovery: %d/%d heartbeats echoed, %d restart(s)\n",
		m.Now(), echoed, sent, sup.Restarts)
	fmt.Println("\nkernel log tail:")
	logs := k.Log()
	for i := len(logs) - 5; i < len(logs); i++ {
		if i >= 0 {
			fmt.Println("  " + logs[i])
		}
	}
}
