// Supervised-recovery: the shadow-driver extension the paper points at (§2).
// Scene 1: a supervisor watches the untrusted e1000e driver process; when
// the driver wedges mid-traffic, the supervisor detects it through the
// interruptible ioctl probe, kills the process, starts a fresh generation,
// and the restarted driver adopts and replays the interface configuration —
// applications observe a stall, not an outage. Scene 2: the untrusted nvmed
// storage process is killed -9 mid-I/O; the block core parks the in-flight
// requests, the restarted process adopts the device, and the shadow log
// replays under the original tags — every read completes with the media's
// own bytes and no caller sees an error.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"

	"sud/internal/devices/e1000"
	"sud/internal/devices/nvme"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/nvmed"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sudml"
)

func main() {
	netScene()
	blockScene()
}

func blockScene() {
	fmt.Println("\n--- scene 2: kill -9 of the nvmed storage process mid-I/O ---")
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(2))
	m.AttachDevice(ctrl)
	sup, err := sudml.SuperviseBlock(k, ctrl, nvmed.NewQ(2), "nvmed", "nvme0", 1003, 2)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.Up(); err != nil {
		log.Fatal(err)
	}
	m.Loop.RunFor(100 * sim.Microsecond)

	const span = 16
	fill := func(lba uint64) []byte {
		return bytes.Repeat([]byte{byte(lba + 1)}, nvme.BlockSize)
	}
	for lba := uint64(0); lba < span; lba++ {
		ctrl.SeedMedia(lba, fill(lba))
	}
	var completed, errors, wrongData int
	stopped := false
	var issue func(seq uint64)
	issue = func(seq uint64) {
		if stopped {
			return
		}
		lba := seq % span
		err := dev.ReadAt(lba, func(data []byte, err error) {
			if stopped {
				return
			}
			completed++
			if err != nil {
				errors++
			} else if !bytes.Equal(data, fill(lba)) {
				wrongData++
			}
			m.Loop.After(500, func() { issue(seq + 1) })
		})
		if err != nil {
			m.Loop.After(10*sim.Microsecond, func() { issue(seq) })
		}
	}
	for j := uint64(0); j < 48; j++ {
		issue(j * 3)
	}
	m.Loop.RunFor(sim.Millisecond)
	fmt.Printf("[%v] kill -9 with %d requests in flight...\n", m.Now(), dev.InFlight())
	sup.Proc().Kill()
	m.Loop.RunFor(20 * sim.Millisecond)
	stopped = true
	fmt.Printf("[%v] recovered: %d restart(s), %d requests replayed\n",
		m.Now(), sup.Restarts, sup.LastReplayed)
	fmt.Printf("       %d reads completed, %d errors, %d wrong payloads\n",
		completed, errors, wrongData)
}

func netScene() {
	fmt.Println("--- scene 1: wedged e1000e driver, ioctl-probe detection ---")
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte(netperf.DUTMAC), e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	remote := netperf.NewRemote(m.Loop, link, 1)
	remote.Turnaround = 30 * sim.Microsecond
	link.Connect(nic, remote)
	nic.AttachLink(link, 0)

	sup, err := sudml.Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		log.Fatal(err)
	}
	sup.OnRestart = func(gen int) {
		fmt.Printf("[%v] supervisor restarted the driver (generation %d)\n", m.Now(), gen)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		log.Fatal(err)
	}
	if err := ifc.Up(netperf.DUTIP); err != nil {
		log.Fatal(err)
	}

	// A small application: one echo ping per millisecond.
	var sent, echoed int
	if _, err := k.Net.UDPBind(5000, func([]byte, netstack.IP, uint16) { echoed++ }); err != nil {
		log.Fatal(err)
	}
	var tick func()
	tick = func() {
		if cur, err := k.Net.Iface("eth0"); err == nil && cur.IsUp() {
			if k.Net.UDPSendTo(cur, netperf.RemoteMAC, netperf.RemoteIP,
				5000, netperf.PortRR, []byte("beat")) == nil {
				sent++
			}
		}
		m.Loop.After(sim.Millisecond, tick)
	}
	tick()

	m.Loop.RunFor(50 * sim.Millisecond)
	fmt.Printf("[%v] healthy: %d/%d heartbeats echoed\n", m.Now(), echoed, sent)

	fmt.Printf("[%v] driver wedges (infinite loop)...\n", m.Now())
	sup.Proc().Hang()
	m.Loop.RunFor(100 * sim.Millisecond)

	fmt.Printf("[%v] after recovery: %d/%d heartbeats echoed, %d restart(s)\n",
		m.Now(), echoed, sent, sup.Restarts)
	fmt.Println("\nkernel log tail:")
	logs := k.Log()
	for i := len(logs) - 5; i < len(logs); i++ {
		if i >= 0 {
			fmt.Println("  " + logs[i])
		}
	}
}
