// Audio-playback: the snd-hda driver in an untrusted SUD process plays a
// PCM stream; the application refills the ring on every period-elapsed
// notification that travels from the device, through the driver process,
// through the audio proxy, into the kernel (§4: sound cards under SUD; §4.1:
// why such processes may want real-time scheduling).
package main

import (
	"fmt"
	"log"
	"math"

	"sud/internal/devices/hda"
	"sud/internal/drivers/sndhda"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

const (
	rate        = 48000
	periodBytes = 4800 // 25 ms per period (16-bit stereo)
	periods     = 4
)

// sine fills one period with a 440 Hz tone, continuing at sample offset n.
func sine(n int) ([]byte, int) {
	out := make([]byte, periodBytes)
	for i := 0; i < periodBytes; i += 4 {
		v := int16(12000 * math.Sin(2*math.Pi*440*float64(n)/rate))
		out[i] = byte(v)
		out[i+1] = byte(uint16(v) >> 8)
		out[i+2] = out[i] // right channel
		out[i+3] = out[i+1]
		n++
	}
	return out, n
}

func main() {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	codec := hda.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(codec)

	proc, err := sudml.Start(k, codec, sndhda.New(), "snd-hda", 1001)
	if err != nil {
		log.Fatal(err)
	}
	pcm, err := k.Audio.PCMDev("hda0")
	if err != nil {
		log.Fatal(err)
	}
	if err := pcm.Prepare(rate, periodBytes, periods); err != nil {
		log.Fatal(err)
	}

	// The "application": keep the ring full of sine tone.
	sampleN := 0
	fill := func() {
		for pcm.QueuedPeriods() < periods {
			var buf []byte
			buf, sampleN = sine(sampleN)
			if err := pcm.WritePeriod(buf); err != nil {
				log.Fatal(err)
			}
		}
	}
	fill()
	pcm.OnPeriod = fill
	if err := pcm.Start(); err != nil {
		log.Fatal(err)
	}

	m.Loop.RunFor(500 * sim.Millisecond) // half a second of playback
	if err := pcm.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("played %d periods (%d ms of 440 Hz tone), %d underruns\n",
		pcm.PeriodsElapsed, pcm.PeriodsElapsed*25, pcm.XRuns)
	fmt.Printf("speaker consumed %d sample bytes via device DMA\n", len(codec.Played))
	fmt.Printf("period notifications through the audio proxy: %d\n", proc.Audio.PeriodDowncalls)
	fmt.Printf("driver process CPU: %v over %v of playback\n",
		sim.Time(proc.Acct.Busy()), m.Now())
}
