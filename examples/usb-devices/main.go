// Usb-devices: the EHCI host controller driver runs in an untrusted SUD
// process with no class-specific proxy at all (Figure 5: "USB host proxy
// driver — 0 lines"): enumeration, keyboard input and disk block IO all go
// through the generic SUD ctl channel.
package main

import (
	"fmt"
	"log"
	"strings"

	"sud/internal/devices/usb"
	"sud/internal/drivers/ehci"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sudml"
)

func main() {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	hc := usb.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(hc)

	kbd := usb.NewKeyboard()
	disk := usb.NewDisk(128)
	must(hc.AttachUSB(0, kbd))
	must(hc.AttachUSB(1, disk))

	proc, err := sudml.Start(k, hc, ehci.New(), "ehci", 1001)
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate through the ctl channel.
	raw, err := proc.Ctl(ehci.CtlEnumerate, nil)
	must(err)
	devs, err := ehci.ParseDevices(raw)
	must(err)
	fmt.Println("enumerated USB devices:")
	var kbdAddr, diskAddr uint8
	for _, d := range devs {
		class := "?"
		switch d.Class {
		case usb.ClassHID:
			class = "HID keyboard"
			kbdAddr = d.Address
		case usb.ClassStorage:
			class = "mass storage"
			diskAddr = d.Address
		}
		fmt.Printf("  port %d addr %d: %04x:%04x (%s)\n", d.Port, d.Address, d.VendorID, d.DeviceID, class)
	}

	// Type "sud" on the keyboard (HID usage codes) and read the reports.
	fmt.Println("\ntyping on the keyboard:")
	for _, code := range []uint8{0x16, 0x18, 0x07} { // s, u, d
		kbd.PressKey(code)
	}
	var pressed []string
	for {
		rep, err := proc.Ctl(ehci.CtlHIDPoll, []byte{kbdAddr})
		must(err)
		if len(rep) == 0 {
			break
		}
		if rep[2] != 0 {
			pressed = append(pressed, fmt.Sprintf("%#02x", rep[2]))
		}
	}
	fmt.Printf("  reports: %s\n", strings.Join(pressed, " "))

	// Write and read back a disk block.
	fmt.Println("\ndisk IO:")
	block := make([]byte, usb.BlockSize)
	copy(block, "written through an untrusted USB stack")
	_, err = proc.Ctl(ehci.CtlDiskWrite, append(ehci.DiskArgs(diskAddr, 7, 1), block...))
	must(err)
	back, err := proc.Ctl(ehci.CtlDiskRead, ehci.DiskArgs(diskAddr, 7, 1))
	must(err)
	fmt.Printf("  LBA 7: %q\n", strings.TrimRight(string(back[:48]), "\x00"))
	fmt.Printf("\ncontroller executed %d transfers; IOMMU faults: %d\n",
		hc.Transfers, len(m.IOMMU.Faults()))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
