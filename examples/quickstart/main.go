// Quickstart: boot a simulated machine, run the unmodified e1000e driver in
// an untrusted SUD process, bring the interface up, and exchange UDP
// packets with a peer — the smallest end-to-end tour of the system.
package main

import (
	"fmt"
	"log"

	"sud/internal/hw"
	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"
)

func main() {
	// The testbed assembles the paper's setup: DUT machine (Intel VT-d,
	// PCIe with ACS), e1000 NIC, Gigabit link, wire-level peer — with
	// the driver in an untrusted user-space process.
	tb, err := netperf.NewTestbed(netperf.ModeSUD, hw.DefaultPlatform())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver process %q running under uid %d\n", tb.Proc.Name, tb.Proc.UID)
	fmt.Printf("interface eth0 is up with IP %v\n", netperf.DUTIP)

	// Bind a UDP socket and count echo replies (the peer echoes port 7).
	replies := 0
	if _, err := tb.K.Net.UDPBind(5000, func(p []byte, src netstack.IP, sport uint16) {
		replies++
		fmt.Printf("  reply %d: %q from %v:%d\n", replies, p, src, sport)
	}); err != nil {
		log.Fatal(err)
	}

	tb.Remote.Turnaround = 20 * sim.Microsecond
	for i := 0; i < 3; i++ {
		msg := fmt.Sprintf("ping #%d", i+1)
		if err := tb.K.Net.UDPSendTo(tb.Ifc, netperf.RemoteMAC, netperf.RemoteIP,
			5000, netperf.PortRR, []byte(msg)); err != nil {
			log.Fatal(err)
		}
	}
	// RR echo needs the remote loop; run some virtual time.
	tb.M.Loop.RunFor(5 * sim.Millisecond)

	fmt.Printf("\n%d/3 packets echoed through the untrusted driver\n", replies)
	st := tb.Proc.Chan.Stats()
	fmt.Printf("uchan traffic: %d upcalls, %d downcalls, %d wakeups\n",
		st.Upcalls, st.Downcalls, st.Wakeups)
	fmt.Printf("IOMMU confinement: %d pages mapped for the device, %d faults\n",
		tb.Proc.DF.Dom.Pages(), len(tb.M.IOMMU.Faults()))
}
