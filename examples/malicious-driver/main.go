// Malicious-driver: the paper's core demonstration (§5.2). The same
// malicious e1000e driver attacks the system twice — once as a trusted
// in-kernel driver (the Linux baseline, where every attack lands) and once
// inside an untrusted SUD process (where hardware confinement stops it).
package main

import (
	"fmt"
	"log"

	"sud/internal/attack"
	"sud/internal/hw"
)

func main() {
	baseline := attack.Config{Name: "Linux (trusted driver)", Mode: attack.InKernel, Platform: hw.DefaultPlatform()}
	confined := attack.Config{Name: "SUD", Mode: attack.UnderSUD, Platform: hw.DefaultPlatform()}

	attacks := []struct {
		name string
		run  func(attack.Config) (attack.Outcome, error)
	}{
		{"DMA write into kernel memory", attack.DMAWrite},
		{"DMA read of a kernel secret", attack.DMARead},
		{"peer-to-peer DMA at another device", attack.P2PDMA},
		{"PCI config space escape", attack.ConfigEscape},
		{"unacknowledged interrupt flood", attack.DeviceIRQFlood},
	}

	fmt.Println("same malicious driver, two hosting modes:")
	for _, a := range attacks {
		fmt.Printf("\n== %s ==\n", a.name)
		for _, cfg := range []attack.Config{baseline, confined} {
			o, err := a.run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "CONFINED"
			if o.Compromised {
				verdict = "COMPROMISED"
			}
			fmt.Printf("  %-24s %-12s %s\n", cfg.Name+":", verdict, o.Detail)
		}
	}

	fmt.Println("\nThe §5.2 corner case — a forged MSI storm via DMA to the MSI window —")
	fmt.Println("depends on the interrupt hardware generation:")
	for _, cfg := range attack.Configs()[1:4] {
		o, err := attack.MSIForgeStorm(cfg)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "confined"
		if o.Compromised {
			verdict = "LIVELOCK"
		}
		fmt.Printf("  %-34s %-10s %s\n", cfg.Name, verdict, o.Detail)
	}
}
