// Command sudbench regenerates the paper's evaluation artifacts:
//
//	sudbench -experiment fig5      # Figure 5: lines of code per component
//	sudbench -experiment fig8      # Figure 8: netperf table, kernel vs SUD
//	sudbench -experiment fig9      # Figure 9: e1000e IO virtual memory map
//	sudbench -experiment security  # §5.2 attack matrix
//	sudbench -experiment multiflow # multi-queue scale scenario (beyond paper)
//	sudbench -experiment blk       # block IOPS scale scenario (beyond paper)
//	sudbench -experiment latency   # per-queue p50/p99 latency artifact
//	sudbench -experiment all       # everything
//
// --trace FILE enables the span recorder for the multiflow and blk
// experiments and writes every recorded hop as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto, or summarize with sudtrace).
// Tracing runs in virtual time, so two same-seed runs produce
// byte-identical trace files:
//
//	sudbench -experiment blk --trace trace.json && sudtrace trace.json
//
// The latency experiment reruns the SUD rx and blk scale scenarios and
// emits the per-queue end-to-end latency percentiles (BENCH_latency.json,
// gated by benchgate like the throughput artifacts):
//
//	sudbench -experiment latency --json BENCH_latency.json
//
// The multiflow experiment takes --queues (uchan ring pairs / e1000e TX+RX
// queues), --flows (concurrent UDP flows, spread over the e1000e and
// ne2k-pci driver processes), --direction (tx, rx or bidi) and --json (write
// the result rows to a file for the perf-trajectory record):
//
//	sudbench -experiment multiflow --queues 4 --flows 6 --direction rx --json BENCH_rx.json
//
// The blk experiment runs 4 KiB random reads against the NVMe-lite
// controller driven by the untrusted nvmed process; --queues is the I/O
// queue-pair fan-out, --jobs × --depth the offered load:
//
//	sudbench -experiment blk --queues 4 --jobs 16 --depth 6 --json BENCH_blk.json
//
// Both scale experiments take --guard to ablate the §3.1.2 TOCTOU guard:
// "fused" (the default checksum-fused copy; plain copy on the block path),
// "separate" (copy then checksum, the strategy the paper rejects) or
// "pageflip" (the zero-copy fast path: page ownership transfer with
// batch-amortised revocation and staged device doorbells):
//
//	sudbench -experiment blk --guard pageflip --queues 4 --json BENCH_blkflip.json
//
// The tenant experiment runs the sharded KV service over the unified
// queue-aware kernel API: --tenants simulated tenants × --conns closed-loop
// connections each, one tenant per driver queue end to end, measured under
// the trusted baseline and under SUD, then the three in-run NoisyNeighbor
// legs (wedged ring, breached sub-domain, durability lie). The JSON rows
// carry per-tenant p50/p99/goodput plus the noisy-leg verdicts, and
// benchgate enforces both the bands and the convictions (BENCH_tenant.json):
//
//	sudbench -experiment tenant --tenants 4 --conns 4 --json BENCH_tenant.json
//
// Measurements run in deterministic virtual time; see EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sud/internal/attack"
	"sud/internal/diskperf"
	"sud/internal/hw"
	"sud/internal/netperf"
	"sud/internal/proxy/ethproxy"
	"sud/internal/report"
	"sud/internal/sim"
	"sud/internal/tenantperf"
	"sud/internal/trace"
)

func main() {
	exp := flag.String("experiment", "all", "fig5 | fig8 | fig9 | security | multiflow | blk | latency | tenant | all")
	window := flag.Int("window-ms", 200, "measurement window (virtual milliseconds)")
	queues := flag.Int("queues", 4, "multiflow/blk: uchan ring pairs / hardware queues")
	flows := flag.Int("flows", 6, "multiflow: concurrent UDP flows")
	direction := flag.String("direction", "tx", "multiflow: tx | rx | bidi")
	jobs := flag.Int("jobs", 16, "blk: concurrent I/O jobs")
	depth := flag.Int("depth", 6, "blk: outstanding reads per job")
	fsyncEvery := flag.Int("fsync-every", 0,
		"blk: run the WRITE workload against a volatile-write-cache device, issuing a flush barrier every N acked writes per job (fio fsync=N); also records a never-flushing reference row")
	cacheBlocks := flag.Int("cache-blocks", 64, "blk: volatile write cache capacity for --fsync-every runs")
	tenants := flag.Int("tenants", 4, "tenant: simulated tenants (one per driver queue)")
	conns := flag.Int("conns", 4, "tenant: closed-loop connections per tenant")
	killAfter := flag.Duration("kill-after", 0,
		"blk: kill the supervised nvmed process this far into the run and measure shadow recovery (e.g. 50ms)")
	failover := flag.Bool("failover", false,
		"blk: with -kill-after, arm a hot standby before the run so the kill is recovered by standby promotion instead of a cold respawn (BENCH_failover.json)")
	breachAfter := flag.Duration("breach-after", 0,
		"blk: make one queue's DMA sub-domain fault this far into the run and measure the surgical single-queue recovery — sibling throughput must stay in band (BENCH_qrecovery.json)")
	guardMode := flag.String("guard", "fused",
		"multiflow/blk: TOCTOU-guard ablation — fused | separate | pageflip")
	jsonPath := flag.String("json", "", "multiflow/blk/latency: also write result rows as JSON to this file")
	tracePath := flag.String("trace", "",
		"multiflow/blk: enable the span recorder and write the hops as Chrome trace-event JSON to this file")
	flag.Parse()

	// Span collection for --trace: each traced testbed's machine records
	// into its own ring; the runs execute sequentially, so appending in run
	// order keeps the file deterministic. Each machine gets its own run id
	// (Chrome pid) — tags and virtual times recur across machines, so
	// merging without it would splice unrelated spans together.
	var spans []trace.Event
	var spansDropped uint64
	runID := 0
	traceOn := func(m *hw.Machine) {
		if *tracePath != "" {
			m.Trace.Enable()
		}
	}
	traceOff := func(m *hw.Machine) {
		if *tracePath != "" {
			for _, ev := range m.Trace.Events() {
				ev.Run = runID
				spans = append(spans, ev)
			}
			spansDropped += m.Trace.Dropped()
			m.Trace.Disable()
			runID++
		}
	}

	run := func(name string, f func() error) {
		switch *exp {
		case "all", name:
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "sudbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	run("fig5", func() error {
		root, err := report.ModuleRoot(".")
		if err != nil {
			return err
		}
		comps, err := report.RunFig5(root)
		if err != nil {
			return err
		}
		fmt.Print(report.FormatFig5(comps))
		return nil
	})

	run("fig8", func() error {
		opt := netperf.DefaultOptions()
		opt.Window = sim.Duration(*window) * sim.Millisecond
		rows, err := report.RunFig8(hw.DefaultPlatform(), opt)
		if err != nil {
			return err
		}
		fmt.Print(report.FormatFig8(rows))
		return nil
	})

	run("fig9", func() error {
		entries, err := report.RunFig9(hw.DefaultPlatform())
		if err != nil {
			return err
		}
		fmt.Print(report.FormatFig9(entries))
		return nil
	})

	run("multiflow", func() error {
		opt := netperf.DefaultOptions()
		opt.Window = sim.Duration(*window) * sim.Millisecond
		var dir netperf.Direction
		switch *direction {
		case "tx":
			dir = netperf.DirTX
		case "rx":
			dir = netperf.DirRX
		case "bidi":
			dir = netperf.DirBidi
		default:
			return fmt.Errorf("unknown --direction %q (tx | rx | bidi)", *direction)
		}
		target := *queues
		if target < 1 {
			target = 1
		}
		// A single-queue reference row, then the requested fan-out.
		rows := []int{1}
		if target > 1 {
			rows = append(rows, target)
		}
		var results []netperf.MultiFlowResult
		for _, q := range rows {
			var tb *netperf.MultiFlowTestbed
			var err error
			switch *guardMode {
			case "fused":
				tb, err = netperf.NewMultiFlowTestbed(q, hw.DefaultPlatform())
			case "separate":
				tb, err = netperf.NewMultiFlowTestbed(q, hw.DefaultPlatform())
				if err == nil {
					tb.EthProc.Eth.GuardMode = ethproxy.GuardSeparate
				}
			case "pageflip":
				tb, err = netperf.NewMultiFlowTestbedFlip(q, hw.DefaultPlatform())
			default:
				return fmt.Errorf("unknown --guard %q (fused | separate | pageflip)", *guardMode)
			}
			if err != nil {
				return err
			}
			traceOn(tb.M)
			res, err := netperf.MultiFlowDir(tb, *flows, dir, opt)
			traceOff(tb.M)
			if err != nil {
				return err
			}
			fmt.Print(res)
			results = append(results, res)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	})

	run("blk", func() error {
		opt := netperf.DefaultOptions()
		opt.Window = sim.Duration(*window) * sim.Millisecond
		target := *queues
		if target < 1 {
			target = 1
		}
		if *breachAfter > 0 {
			// Surgical-recovery smoke: one queue's sub-domain faults mid-run;
			// the supervisor quarantines, re-arms and replays exactly that
			// queue. Siblings must not notice (BENCH_qrecovery.json).
			tb, err := diskperf.NewSupervisedTestbed(target, hw.DefaultPlatform())
			if err != nil {
				return err
			}
			breach := sim.Duration((*breachAfter).Nanoseconds())
			res, err := diskperf.QueueBreachRecovery(tb, *jobs, *depth, breach, 0)
			if err != nil {
				return err
			}
			fmt.Print(res)
			if res.Errors != 0 {
				return fmt.Errorf("surgical recovery surfaced %d application-visible errors", res.Errors)
			}
			if res.QueueRecoveries == 0 {
				return fmt.Errorf("breach was never answered by a surgical recovery")
			}
			if res.Restarts != 0 {
				return fmt.Errorf("surgical recovery escalated to %d process restarts", res.Restarts)
			}
			if *jsonPath != "" {
				blob, err := json.MarshalIndent([]diskperf.QueueRecoveryResult{res}, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		}
		if *killAfter > 0 {
			// Recovery smoke: kill the supervised driver mid-run; record
			// replayed requests and recovery latency (BENCH_recovery.json).
			// With -failover a hot standby is armed first, so the kill is
			// served by promotion (BENCH_failover.json).
			var tb *diskperf.Testbed
			var err error
			if *failover {
				tb, err = diskperf.NewFailoverTestbed(target, hw.DefaultPlatform())
			} else {
				tb, err = diskperf.NewSupervisedTestbed(target, hw.DefaultPlatform())
			}
			if err != nil {
				return err
			}
			kill := sim.Duration((*killAfter).Nanoseconds())
			res, err := diskperf.KillRecovery(tb, *jobs, *depth, kill, kill+100*sim.Millisecond)
			if err != nil {
				return err
			}
			fmt.Print(res)
			if res.Errors != 0 {
				return fmt.Errorf("recovery surfaced %d application-visible errors", res.Errors)
			}
			if *failover && res.Failovers == 0 {
				return fmt.Errorf("standby was armed but the kill was recovered by cold respawn")
			}
			if *jsonPath != "" {
				blob, err := json.MarshalIndent([]diskperf.RecoveryResult{res}, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		}
		if *fsyncEvery > 0 {
			// Flush-bounded write IOPS (BENCH_flush.json): the same SUD
			// testbed with a volatile write cache, once at cache speed
			// (never flushing) and once fsync-bounded — the gap is the
			// price of durability through the whole untrusted path.
			var results []diskperf.Result
			for _, fs := range []int{0, *fsyncEvery} {
				tb, err := diskperf.NewTestbedWC(diskperf.ModeSUD, target, *cacheBlocks, hw.DefaultPlatform())
				if err != nil {
					return err
				}
				res, err := diskperf.BlockIOPSWrite(tb, *jobs, *depth, fs, opt)
				if err != nil {
					return err
				}
				fmt.Print(res)
				results = append(results, res)
			}
			if *jsonPath != "" {
				blob, err := json.MarshalIndent(results, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *jsonPath)
			}
			return nil
		}
		// A trusted-baseline row, a single-queue SUD reference row, then
		// the requested fan-out.
		type row struct {
			mode diskperf.Mode
			q    int
		}
		rows := []row{{diskperf.ModeKernel, 1}, {diskperf.ModeSUD, 1}}
		if target > 1 {
			rows = append(rows, row{diskperf.ModeSUD, target})
		}
		var results []diskperf.Result
		for _, r := range rows {
			var tb *diskperf.Testbed
			var err error
			switch *guardMode {
			case "fused", "separate":
				// The block path has no checksum to fuse with: both copy
				// strategies are the same plain guard copy.
				tb, err = diskperf.NewTestbed(r.mode, r.q, hw.DefaultPlatform())
			case "pageflip":
				if r.mode == diskperf.ModeSUD {
					tb, err = diskperf.NewTestbedFlip(r.mode, r.q, hw.DefaultPlatform())
				} else {
					// The trusted baseline has no guard to flip away.
					tb, err = diskperf.NewTestbed(r.mode, r.q, hw.DefaultPlatform())
				}
			default:
				return fmt.Errorf("unknown --guard %q (fused | separate | pageflip)", *guardMode)
			}
			if err != nil {
				return err
			}
			traceOn(tb.M)
			res, err := diskperf.BlockIOPS(tb, *jobs, *depth, opt)
			traceOff(tb.M)
			if err != nil {
				return err
			}
			fmt.Print(res)
			results = append(results, res)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	})

	run("latency", func() error {
		opt := netperf.DefaultOptions()
		opt.Window = sim.Duration(*window) * sim.Millisecond
		rows, err := report.RunLatency(hw.DefaultPlatform(), *queues, *flows, *queues, *jobs, *depth, opt)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Print(r)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	})

	run("tenant", func() error {
		// Kernel baseline first, then SUD; the NoisyNeighbor legs run
		// against fresh SUD testbeds and ride on the SUD row.
		var results []tenantperf.Result
		for _, mode := range []tenantperf.Mode{tenantperf.ModeKernel, tenantperf.ModeSUD} {
			tb, err := tenantperf.NewTestbed(tenantperf.Config{
				Mode: mode, Tenants: *tenants, Conns: *conns, Queues: *queues,
			})
			if err != nil {
				return err
			}
			res, err := tenantperf.Run(tb, tenantperf.DefaultOptions())
			if err != nil {
				return err
			}
			if mode == tenantperf.ModeSUD {
				legs, err := attack.RunNoisyLegs(hw.DefaultPlatform())
				if err != nil {
					return err
				}
				res.Noisy = legs
			}
			fmt.Print(res)
			results = append(results, res)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return nil
	})

	run("security", func() error {
		outcomes, err := report.RunSecurity()
		if err != nil {
			return err
		}
		fmt.Print(report.FormatSecurity(outcomes))
		fmt.Println()
		fmt.Print(report.SecuritySummary(outcomes))
		return nil
	})

	if *tracePath != "" {
		if len(spans) == 0 {
			fmt.Fprintf(os.Stderr, "sudbench: --trace recorded no spans (only multiflow and blk are traced)\n")
			os.Exit(1)
		}
		if err := os.WriteFile(*tracePath, trace.ChromeJSON(spans, spansDropped), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sudbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d span events)\n", *tracePath, len(spans))
	}
}
