// Command sudattack runs the §5.2 security evaluation: a malicious e1000e
// driver attacks the system from inside the trusted kernel (the Linux
// baseline) and from inside an untrusted SUD process, across the hardware
// configurations the paper discusses (Intel with and without interrupt
// remapping, AMD, PCIe without ACS, legacy PCI).
package main

import (
	"flag"
	"fmt"
	"os"

	"sud/internal/attack"
	"sud/internal/report"
)

func main() {
	verbose := flag.Bool("v", false, "print every outcome, not just the summary")
	flag.Parse()

	outcomes, err := attack.RunMatrix()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudattack: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Print(report.FormatSecurity(outcomes))
		fmt.Println()
	}
	fmt.Print(report.SecuritySummary(outcomes))

	// Exit non-zero if any SUD configuration with full hardware support
	// (interrupt remapping) was compromised — that would falsify the
	// paper's central claim.
	for _, o := range outcomes {
		if o.Config == "SUD, Intel + int-remap" && o.Compromised {
			fmt.Fprintf(os.Stderr, "sudattack: hardened configuration compromised: %s\n", o)
			os.Exit(2)
		}
	}
}
