// Command sudctl demonstrates the administrator's view of SUD (§4.1): it
// boots a machine, starts an untrusted driver process for the e1000e,
// inspects its state (device files, IOMMU mappings, uchan statistics), then
// kills and restarts it — the kill -9 / restart workflow the paper
// describes — and shows the system surviving a hung driver. A second
// section does the same for the storage class: the untrusted nvmed process,
// its per-queue IOMMU-domain allocations, and block traffic through k.Blk,
// with the span recorder enabled so the round trip prints as a per-hop
// latency breakdown. The final section puts the nvmed process under
// shadow-driver supervision, kills it mid-traffic, and dumps the
// supervisor's flight recorder — the kill → park → detect → verdict →
// respawn → adopt → replay → drain timeline an administrator reads after
// the fact. A last section breaches one queue's per-queue DMA sub-domain
// mid-traffic and shows the surgical single-queue recovery: only that
// queue is revoked, parked, graded and replayed while its sibling keeps
// serving.
//
// Everything runs in deterministic virtual time, so the output is stable
// byte for byte; a golden test pins it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"sud/internal/diskperf"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/hw"
	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/trace"
)

func main() {
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	if err := netSection(w); err != nil {
		return err
	}
	if err := blockSection(w); err != nil {
		return err
	}
	if err := flightSection(w); err != nil {
		return err
	}
	return surgicalSection(w)
}

// netSection is the paper's administrator tour: inspect, hang, kill -9,
// restart.
func netSection(w io.Writer) error {
	tb, err := netperf.NewTestbed(netperf.ModeSUD, hw.DefaultPlatform())
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "== driver process ==")
	fmt.Fprintf(w, "name: %s  uid: %d  runtime memory: %d MB\n",
		tb.Proc.Name, tb.Proc.UID, sudml.RuntimeMemoryBytes>>20)
	fmt.Fprintf(w, "interrupt vector: %#x\n", tb.Proc.DF.Vector())

	fmt.Fprintln(w, "\n== IOMMU domain (the device can DMA here and nowhere else) ==")
	for _, a := range tb.Proc.DF.Allocs() {
		fmt.Fprintf(w, "  %-22s iova %#x  %4d pages\n", a.Label, uint64(a.IOVA), a.Pages)
	}

	// netserver-style echo application for the traffic checks.
	echo := func(ifc *netstack.Iface) error {
		tb.K.Net.UDPClose(netperf.PortRR)
		_, err := tb.K.Net.UDPBind(netperf.PortRR, func(p []byte, srcIP netstack.IP, srcPort uint16) {
			_ = tb.K.Net.UDPSendTo(ifc, netperf.RemoteMAC, srcIP, netperf.PortRR, srcPort, p)
		})
		return err
	}
	if err := echo(tb.Ifc); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n== traffic check ==")
	tb.Remote.StartRR(64)
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Fprintf(w, "  %d request/response transactions completed\n", tb.Remote.RRCount)
	st := tb.Proc.Chan.Stats()
	fmt.Fprintf(w, "  uchan: %d upcalls, %d downcalls, %d wakeups, %d spin pickups\n",
		st.Upcalls, st.Downcalls, st.Wakeups, st.SpinPickups)

	fmt.Fprintln(w, "\n== hang the driver (infinite loop) ==")
	tb.Proc.Hang()
	if _, err := tb.Ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
		fmt.Fprintf(w, "  ioctl interrupted cleanly: %v\n", err)
	}
	fmt.Fprintln(w, "  kernel still responsive; administrator decides to kill -9")
	tb.Proc.Kill()

	fmt.Fprintln(w, "\n== restart (a fresh process binds the same device) ==")
	proc2, err := sudml.Start(tb.K, tb.NIC, e1000e.New(), "e1000e", 1002)
	if err != nil {
		return fmt.Errorf("restart: %v", err)
	}
	ifc, err := tb.K.Net.Iface("eth0")
	if err != nil {
		return err
	}
	if err := ifc.Up(netperf.DUTIP); err != nil {
		return err
	}
	if err := echo(ifc); err != nil {
		return err
	}
	tb.Remote.StartRR(64)
	before := tb.Remote.RRCount
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Fprintf(w, "  new process %q (uid %d) serving traffic: %d transactions after restart\n",
		proc2.Name, proc2.UID, tb.Remote.RRCount-before)
	fmt.Fprintln(w, "\nkernel log tail:")
	log := tb.K.Log()
	for i := max(0, len(log)-6); i < len(log); i++ {
		fmt.Fprintf(w, "  %s\n", log[i])
	}
	return nil
}

// blockSection is the storage half of the tour: an untrusted nvmed process
// with two I/O queue pairs, its per-queue IOMMU-domain allocations (queue
// rings, per-queue data pools, per-queue proxy slot pools), and a block
// round trip through k.Blk — traced, so the round trip prints as a per-hop
// latency breakdown.
func blockSection(w io.Writer) error {
	btb, err := diskperf.NewTestbed(diskperf.ModeSUD, 2, hw.DefaultPlatform())
	if err != nil {
		return fmt.Errorf("block: %v", err)
	}
	fmt.Fprintln(w, "\n== block driver process (NVMe-lite) ==")
	fmt.Fprintf(w, "name: %s  uid: %d  device: %s (%d blocks × %d B)\n",
		btb.Proc.Name, btb.Proc.UID, btb.Dev.Name, btb.Dev.Geom.Blocks, btb.Dev.Geom.BlockSize)

	fmt.Fprintln(w, "\n== IOMMU domain (note the per-queue pools: queue-scoped allocations) ==")
	// Label the driver's allocations by their order and kind, as nvmed
	// makes them (the Figure 9 methodology applied to storage): admin
	// rings and identify page, then per queue pair its SQ/CQ rings and
	// data pool; the "blk qN slot pool" entries are the proxy's.
	names := map[string]string{
		"coherent #0":    "admin SQ ring",
		"coherent #1":    "admin CQ ring",
		"coherent #2":    "identify page",
		"coherent q1 #5": "q0 I/O SQ ring",
		"coherent q1 #6": "q0 I/O CQ ring",
		"caching q1 #7":  "q0 data pool",
		"coherent q2 #8": "q1 I/O SQ ring",
		"coherent q2 #9": "q1 I/O CQ ring",
		"caching q2 #10": "q1 data pool",
	}
	for _, a := range btb.Proc.DF.Allocs() {
		label := a.Label
		if n := names[label]; n != "" {
			label = n
		}
		fmt.Fprintf(w, "  %-22s iova %#x  %4d pages\n", label, uint64(a.IOVA), a.Pages)
	}

	fmt.Fprintln(w, "\n== per-queue DMA sub-domains (queue-granular confinement) ==")
	for _, s := range btb.Proc.DF.QueueStreams() {
		state := "armed"
		if btb.Proc.DF.QueueQuarantined(s) {
			state = "quarantined"
		}
		fmt.Fprintf(w, "  stream %d -> queue %d: %s, epoch %d\n",
			s, s-1, state, btb.Dev.QueueEpoch(s-1))
	}
	fmt.Fprintf(w, "  %d sub-domains attached; a descriptor naming a sibling queue's IOVA faults at the walk\n",
		btb.M.IOMMU.QueueDomains(btb.Ctrl.BDF()))

	fmt.Fprintln(w, "\n== block traffic check (span recorder on) ==")
	btb.M.Trace.Enable()
	pattern := bytes.Repeat([]byte{0xDB}, btb.Dev.Geom.BlockSize)
	var writeErr error
	if err := btb.Dev.WriteAt(42, pattern, func(err error) { writeErr = err }); err != nil {
		return err
	}
	okRead := false
	if err := btb.Dev.ReadAt(42, func(data []byte, err error) {
		okRead = err == nil && bytes.Equal(data, pattern)
	}); err != nil {
		return err
	}
	btb.M.Loop.RunFor(5 * sim.Millisecond)
	btb.M.Trace.Disable()
	if writeErr != nil {
		return fmt.Errorf("write: %v", writeErr)
	}
	fmt.Fprintf(w, "  block 42 written and read back intact: %v\n", okRead)
	st := btb.Proc.Chan.Stats()
	fmt.Fprintf(w, "  uchan: %d upcalls, %d downcalls, %d wakeups\n", st.Upcalls, st.Downcalls, st.Wakeups)

	fmt.Fprintln(w, "\n== span summary (where the round trip spent its time) ==")
	trace.FormatSummary(w, trace.Summarize(btb.M.Trace.Events()))
	return nil
}

// flightSection puts nvmed under shadow-driver supervision, kills it with
// reads in flight, and dumps the supervisor's flight recorder — the
// post-incident timeline an administrator reads to see what the policy
// plane saw and did.
func flightSection(w io.Writer) error {
	tb, err := diskperf.NewSupervisedTestbed(2, hw.DefaultPlatform())
	if err != nil {
		return fmt.Errorf("flight: %v", err)
	}
	fmt.Fprintln(w, "\n== supervised driver: kill -9 with I/O in flight ==")
	res, err := diskperf.KillRecovery(tb, 4, 4, 2*sim.Millisecond, 40*sim.Millisecond)
	if err != nil {
		return fmt.Errorf("flight: %v", err)
	}
	fmt.Fprintf(w, "  %d restart(s), %d replayed, %d completed, %d errors\n",
		res.Restarts, res.Replayed, res.Completed, res.Errors)

	fmt.Fprintln(w, "\n== flight recorder (last 12 events) ==")
	trace.FormatFlight(w, tb.Sup.Flight.Events(), 12)
	return nil
}

// surgicalSection breaches one queue's DMA sub-domain mid-traffic and shows
// the surgical single-queue recovery: the supervisor revokes, parks, grades,
// re-arms and replays exactly that queue — the process and its sibling queue
// never stop — and the flight recorder reads kill → park → verdict →
// replay → drain for queue 1 alone.
func surgicalSection(w io.Writer) error {
	tb, err := diskperf.NewSupervisedTestbed(2, hw.DefaultPlatform())
	if err != nil {
		return fmt.Errorf("surgical: %v", err)
	}
	fmt.Fprintln(w, "\n== surgical recovery: queue 1's sub-domain faults mid-traffic ==")
	res, err := diskperf.QueueBreachRecovery(tb, 4, 4, 20*sim.Millisecond, 0)
	if err != nil {
		return fmt.Errorf("surgical: %v", err)
	}
	fmt.Fprintf(w, "  %d surgical recover(ies), %d process restart(s), %d replayed, %d completed, %d errors\n",
		res.QueueRecoveries, res.Restarts, res.Replayed, res.Completed, res.Errors)
	fmt.Fprintf(w, "  sibling queue throughput: %.1f KIOPS before, %.1f KIOPS through the episode\n",
		res.PreSiblingKIOPS, res.SiblingKIOPS)
	for q := 0; q < 2; q++ {
		state := "armed"
		if tb.Proc.DF.QueueQuarantined(q + 1) {
			state = "quarantined"
		}
		fmt.Fprintf(w, "  queue %d: epoch %d, %s\n", q, tb.Dev.QueueEpoch(q), state)
	}

	fmt.Fprintln(w, "\n== flight recorder (the per-queue timeline) ==")
	trace.FormatFlight(w, tb.Sup.Flight.Events(), 8)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
