// Command sudctl demonstrates the administrator's view of SUD (§4.1): it
// boots a machine, starts an untrusted driver process for the e1000e,
// inspects its state (device files, IOMMU mappings, uchan statistics), then
// kills and restarts it — the kill -9 / restart workflow the paper
// describes — and shows the system surviving a hung driver. A second
// section does the same for the storage class: the untrusted nvmed process,
// its per-queue IOMMU-domain allocations, and block traffic through k.Blk.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"sud/internal/diskperf"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/hw"
	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"
	"sud/internal/sudml"
)

func main() {
	flag.Parse()

	tb, err := netperf.NewTestbed(netperf.ModeSUD, hw.DefaultPlatform())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("== driver process ==")
	fmt.Printf("name: %s  uid: %d  runtime memory: %d MB\n",
		tb.Proc.Name, tb.Proc.UID, sudml.RuntimeMemoryBytes>>20)
	fmt.Printf("interrupt vector: %#x\n", tb.Proc.DF.Vector())

	fmt.Println("\n== IOMMU domain (the device can DMA here and nowhere else) ==")
	for _, a := range tb.Proc.DF.Allocs() {
		fmt.Printf("  %-22s iova %#x  %4d pages\n", a.Label, uint64(a.IOVA), a.Pages)
	}

	// netserver-style echo application for the traffic checks.
	echo := func(ifc *netstack.Iface) {
		tb.K.Net.UDPClose(netperf.PortRR)
		if _, err := tb.K.Net.UDPBind(netperf.PortRR, func(p []byte, srcIP netstack.IP, srcPort uint16) {
			_ = tb.K.Net.UDPSendTo(ifc, netperf.RemoteMAC, srcIP, netperf.PortRR, srcPort, p)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
			os.Exit(1)
		}
	}
	echo(tb.Ifc)

	fmt.Println("\n== traffic check ==")
	tb.Remote.StartRR(64)
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Printf("  %d request/response transactions completed\n", tb.Remote.RRCount)
	st := tb.Proc.Chan.Stats()
	fmt.Printf("  uchan: %d upcalls, %d downcalls, %d wakeups, %d spin pickups\n",
		st.Upcalls, st.Downcalls, st.Wakeups, st.SpinPickups)

	fmt.Println("\n== hang the driver (infinite loop) ==")
	tb.Proc.Hang()
	if _, err := tb.Ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
		fmt.Printf("  ioctl interrupted cleanly: %v\n", err)
	}
	fmt.Println("  kernel still responsive; administrator decides to kill -9")
	tb.Proc.Kill()

	fmt.Println("\n== restart (a fresh process binds the same device) ==")
	proc2, err := sudml.Start(tb.K, tb.NIC, e1000e.New(), "e1000e", 1002)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: restart: %v\n", err)
		os.Exit(1)
	}
	ifc, err := tb.K.Net.Iface("eth0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	if err := ifc.Up(netperf.DUTIP); err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	echo(ifc)
	tb.Remote.StartRR(64)
	before := tb.Remote.RRCount
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Printf("  new process %q (uid %d) serving traffic: %d transactions after restart\n",
		proc2.Name, proc2.UID, tb.Remote.RRCount-before)
	fmt.Println("\nkernel log tail:")
	log := tb.K.Log()
	for i := max(0, len(log)-6); i < len(log); i++ {
		fmt.Printf("  %s\n", log[i])
	}

	blockSection()
}

// blockSection is the storage half of the tour: an untrusted nvmed process
// with two I/O queue pairs, its per-queue IOMMU-domain allocations (queue
// rings, per-queue data pools, per-queue proxy slot pools), and a block
// round trip through k.Blk.
func blockSection() {
	btb, err := diskperf.NewTestbed(diskperf.ModeSUD, 2, hw.DefaultPlatform())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: block: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\n== block driver process (NVMe-lite) ==")
	fmt.Printf("name: %s  uid: %d  device: %s (%d blocks × %d B)\n",
		btb.Proc.Name, btb.Proc.UID, btb.Dev.Name, btb.Dev.Geom.Blocks, btb.Dev.Geom.BlockSize)

	fmt.Println("\n== IOMMU domain (note the per-queue pools: queue-scoped allocations) ==")
	// Label the driver's allocations by their order and kind, as nvmed
	// makes them (the Figure 9 methodology applied to storage): admin
	// rings and identify page, then per queue pair its SQ/CQ rings and
	// data pool; the "blk qN slot pool" entries are the proxy's.
	names := map[string]string{
		"coherent #0": "admin SQ ring",
		"coherent #1": "admin CQ ring",
		"coherent #2": "identify page",
		"coherent #5": "q0 I/O SQ ring",
		"coherent #6": "q0 I/O CQ ring",
		"caching #7":  "q0 data pool",
		"coherent #8": "q1 I/O SQ ring",
		"coherent #9": "q1 I/O CQ ring",
		"caching #10": "q1 data pool",
	}
	for _, a := range btb.Proc.DF.Allocs() {
		label := a.Label
		if n := names[label]; n != "" {
			label = n
		}
		fmt.Printf("  %-22s iova %#x  %4d pages\n", label, uint64(a.IOVA), a.Pages)
	}

	fmt.Println("\n== block traffic check ==")
	pattern := bytes.Repeat([]byte{0xDB}, btb.Dev.Geom.BlockSize)
	if err := btb.Dev.WriteAt(42, pattern, func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "sudctl: write: %v\n", err)
		}
	}); err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	okRead := false
	if err := btb.Dev.ReadAt(42, func(data []byte, err error) {
		okRead = err == nil && bytes.Equal(data, pattern)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	btb.M.Loop.RunFor(5 * sim.Millisecond)
	fmt.Printf("  block 42 written and read back intact: %v\n", okRead)
	st := btb.Proc.Chan.Stats()
	fmt.Printf("  uchan: %d upcalls, %d downcalls, %d wakeups\n", st.Upcalls, st.Downcalls, st.Wakeups)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
