// Command sudctl demonstrates the administrator's view of SUD (§4.1): it
// boots a machine, starts an untrusted driver process for the e1000e,
// inspects its state (device files, IOMMU mappings, uchan statistics), then
// kills and restarts it — the kill -9 / restart workflow the paper
// describes — and shows the system surviving a hung driver.
package main

import (
	"flag"
	"fmt"
	"os"

	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/hw"
	"sud/internal/kernel/netstack"
	"sud/internal/netperf"
	"sud/internal/sim"
	"sud/internal/sudml"
)

func main() {
	flag.Parse()

	tb, err := netperf.NewTestbed(netperf.ModeSUD, hw.DefaultPlatform())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("== driver process ==")
	fmt.Printf("name: %s  uid: %d  runtime memory: %d MB\n",
		tb.Proc.Name, tb.Proc.UID, sudml.RuntimeMemoryBytes>>20)
	fmt.Printf("interrupt vector: %#x\n", tb.Proc.DF.Vector())

	fmt.Println("\n== IOMMU domain (the device can DMA here and nowhere else) ==")
	for _, a := range tb.Proc.DF.Allocs() {
		fmt.Printf("  %-22s iova %#x  %4d pages\n", a.Label, uint64(a.IOVA), a.Pages)
	}

	// netserver-style echo application for the traffic checks.
	echo := func(ifc *netstack.Iface) {
		tb.K.Net.UDPClose(netperf.PortRR)
		if _, err := tb.K.Net.UDPBind(netperf.PortRR, func(p []byte, srcIP netstack.IP, srcPort uint16) {
			_ = tb.K.Net.UDPSendTo(ifc, netperf.RemoteMAC, srcIP, netperf.PortRR, srcPort, p)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
			os.Exit(1)
		}
	}
	echo(tb.Ifc)

	fmt.Println("\n== traffic check ==")
	tb.Remote.StartRR(64)
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Printf("  %d request/response transactions completed\n", tb.Remote.RRCount)
	st := tb.Proc.Chan.Stats()
	fmt.Printf("  uchan: %d upcalls, %d downcalls, %d wakeups, %d spin pickups\n",
		st.Upcalls, st.Downcalls, st.Wakeups, st.SpinPickups)

	fmt.Println("\n== hang the driver (infinite loop) ==")
	tb.Proc.Hang()
	if _, err := tb.Ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
		fmt.Printf("  ioctl interrupted cleanly: %v\n", err)
	}
	fmt.Println("  kernel still responsive; administrator decides to kill -9")
	tb.Proc.Kill()

	fmt.Println("\n== restart (a fresh process binds the same device) ==")
	proc2, err := sudml.Start(tb.K, tb.NIC, e1000e.New(), "e1000e", 1002)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: restart: %v\n", err)
		os.Exit(1)
	}
	ifc, err := tb.K.Net.Iface("eth0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	if err := ifc.Up(netperf.DUTIP); err != nil {
		fmt.Fprintf(os.Stderr, "sudctl: %v\n", err)
		os.Exit(1)
	}
	echo(ifc)
	tb.Remote.StartRR(64)
	before := tb.Remote.RRCount
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopRR()
	fmt.Printf("  new process %q (uid %d) serving traffic: %d transactions after restart\n",
		proc2.Name, proc2.UID, tb.Remote.RRCount-before)
	fmt.Println("\nkernel log tail:")
	log := tb.K.Log()
	for i := max(0, len(log)-6); i < len(log); i++ {
		fmt.Printf("  %s\n", log[i])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
