package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from this run's output")

// TestGoldenOutput pins sudctl's entire output byte for byte. Everything it
// prints derives from deterministic virtual time, so any diff is a real
// change to the administrator-facing format (IOMMU layout, uchan counters,
// span summary table, flight-recorder timeline) and must be reviewed — the
// trace and flight sections in particular are the stable surface the ISSUE
// promises.
func TestGoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden := filepath.Join("testdata", "sudctl.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s (run with -update and review the diff)\n--- got ---\n%s",
			golden, diffHint(want, buf.Bytes()))
	}
}

// diffHint returns the first differing line pair, so the failure message
// points at the change without dumping both full transcripts.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return "line " + itoa(i+1) + ":\n want: " + string(wl[i]) + "\n  got: " + string(gl[i])
		}
	}
	return "line count differs: want " + itoa(len(wl)) + ", got " + itoa(len(gl))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
