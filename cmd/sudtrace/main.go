// Command sudtrace summarizes a span trace captured by sudbench --trace:
//
//	sudbench -experiment blk --trace trace.json
//	sudtrace trace.json
//
// The input is Chrome trace-event JSON (load the same file in
// chrome://tracing or Perfetto for the visual timeline). sudtrace groups
// the instant events into spans by (class, queue, tag), orders each span's
// hops by virtual time, and prints the latency distribution of every
// adjacent hop pair — where a request's time went, stage by stage, across
// the kernel stub, the uchan ring, the untrusted driver process and the
// device engine.
package main

import (
	"fmt"
	"os"

	"sud/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: sudtrace <trace.json>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudtrace: %v\n", err)
		os.Exit(1)
	}
	events, err := trace.ParseChromeJSON(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sudtrace: %v\n", err)
		os.Exit(1)
	}
	stats := trace.Summarize(events)
	fmt.Printf("%s: %d span events\n", os.Args[1], len(events))
	trace.FormatSummary(os.Stdout, stats)
}
