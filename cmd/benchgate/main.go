// Command benchgate is the CI perf-regression and recovery-SLO gate: it
// compares the BENCH_*.json files a CI run emitted against the checked-in
// baselines under bench/baselines/ and fails (exit 1) when a headline
// metric leaves the tolerance band or the recovery SLO is violated.
//
//	benchgate -baselines bench/baselines BENCH_rx.json BENCH_blk.json \
//	          BENCH_recovery.json BENCH_flush.json
//
// Every measurement runs in deterministic virtual time, so a drift of any
// size is a real behavioural change — the band (default ±15%) exists only
// to absorb deliberate, reviewed perf movement; moving a baseline is a
// diff in bench/baselines/, reviewed like code. Rules per file kind
// (derived from the file name, BENCH_<kind>.json or <kind>.json):
//
//	rx        []netperf.MultiFlowResult   AggregateKpps per (Q,direction,flows) row
//	rxflip    rx rules, plus each page-flip row must actually have flipped
//	          pages and stay near-zero-copy (GuardBytesPerFrame bounded)
//	blk       []diskperf.Result           ReadKIOPS per (mode,Q,J,D) row
//	blkflip   blk rules with the staged SQ-doorbell rate banded too, plus
//	          each page-flip row must stay zero-copy (GuardBytesPerIO bounded)
//	flush     []diskperf.Result           write IOPS per (mode,Q,J,D,fsync) row
//	recovery  []diskperf.RecoveryResult   zero errors, replay ran, drain p99
//	                                      under -recovery-slo-us, latency in band
//	failover  []diskperf.RecoveryResult   recovery rules, plus the kill must
//	                                      have been served by hot-standby
//	                                      promotion (Failovers ≥ 1) and drain
//	                                      p99 under -failover-slo-us — the
//	                                      tighter budget failover exists for
//	qrecovery []diskperf.QueueRecoveryResult
//	                                      zero errors, a surgical (not
//	                                      process-restart) recovery ran, replay
//	                                      ran, and sibling throughput in band —
//	                                      against both the run's own pre-breach
//	                                      rate and the baseline
//	latency   []report.LatencyRow         end-to-end p50/p99 per (kind,Q) row,
//	                                      merged and per queue — the latency
//	                                      face of the rx and blk scale runs
//	tenant    []tenantperf.Result         per-tenant p50/p99/goodput and the
//	                                      aggregate rate banded per
//	                                      (mode,T,conns,Q) row; the SUD row
//	                                      must carry the NoisyNeighbor legs,
//	                                      every leg convicted with the victim
//	                                      p99 drift inside the band
//
// With -append FILE, one JSON line per checked metric is appended to FILE
// (sha, kind, key, metric, value, baseline) — the perf-trajectory record
// CI uploads so the run history accumulates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sud/internal/diskperf"
	"sud/internal/netperf"
	"sud/internal/report"
	"sud/internal/tenantperf"
)

// Absolute zero-copy bounds for page-flip rows. The flip fast path may
// legitimately fall back to the guard copy for the rare frame that straddles
// an RX slot boundary; anything past these bounds means the copy path came
// back wholesale.
const (
	maxFlipGuardBytesPerFrame = 200
	maxFlipGuardBytesPerIO    = 64
)

type gate struct {
	tolerance  float64
	sloUS      float64
	failSloUS  float64
	sha        string
	violations int
	trajectory []trajLine
}

type trajLine struct {
	SHA      string  `json:"sha,omitempty"`
	Kind     string  `json:"kind"`
	Key      string  `json:"key"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline,omitempty"`
}

func main() {
	baselines := flag.String("baselines", "bench/baselines", "directory holding the checked-in baseline JSON files")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative deviation from the baseline (0.15 = ±15%)")
	sloUS := flag.Float64("recovery-slo-us", 1000, "kill-to-drained p99 budget in virtual microseconds")
	failSloUS := flag.Float64("failover-slo-us", 150, "kill-to-drained p99 budget for hot-standby failover runs — tighter than the cold-respawn SLO because the respawn cost is pre-paid")
	appendPath := flag.String("append", "", "append one JSON line per checked metric to this trajectory file")
	sha := flag.String("sha", os.Getenv("GITHUB_SHA"), "commit identifier recorded in the trajectory")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no BENCH_*.json files given")
		os.Exit(2)
	}
	g := &gate{tolerance: *tolerance, sloUS: *sloUS, failSloUS: *failSloUS, sha: *sha}
	for _, path := range flag.Args() {
		kind := kindOf(path)
		base := filepath.Join(*baselines, kind+".json")
		if err := g.check(kind, path, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
	}
	if *appendPath != "" {
		f, err := os.OpenFile(*appendPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		for _, l := range g.trajectory {
			blob, _ := json.Marshal(l)
			fmt.Fprintf(f, "%s\n", blob)
		}
		f.Close()
	}
	if g.violations > 0 {
		fmt.Printf("benchgate: %d violation(s)\n", g.violations)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d metric(s) within ±%.0f%% of baseline, recovery p99 under %.0fµs\n",
		len(g.trajectory), g.tolerance*100, g.sloUS)
}

// kindOf maps BENCH_rx.json / rx.json → "rx".
func kindOf(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	return strings.TrimPrefix(name, "BENCH_")
}

func (g *gate) check(kind, curPath, basePath string) error {
	switch kind {
	case "rx", "rxflip":
		var cur, base []netperf.MultiFlowResult
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("Q=%d dir=%s flows=%d", r.Queues, r.Direction, r.Flows)
			if r.Flip {
				key += " flip"
			}
			// Zero-copy is the point of the flip path: the guard copy may
			// survive only for slot-straddling edge frames. These bounds are
			// absolute, not baseline-relative — a copy creeping back in is a
			// regression even if it is "stable". They apply only where the
			// fast path can engage: the Q=1 reference row keeps the paper's
			// one-message-per-frame transport, whose lone references can
			// never tile a page, so it is guard-copied by design.
			if r.Flip && r.Queues > 1 {
				if r.PagesFlipped == 0 {
					g.violate(kind, key, "page-flip row flipped no pages — the fast path did not engage")
				}
				if r.GuardBytesPerFrame > maxFlipGuardBytesPerFrame {
					g.violate(kind, key, "guard copied %.1f B/frame on the page-flip path (bound %d)",
						r.GuardBytesPerFrame, maxFlipGuardBytesPerFrame)
				}
			}
			b, ok := findRx(base, r)
			if !ok {
				return key, nil
			}
			ms := []metric{{"AggregateKpps", r.AggregateKpps, b.AggregateKpps, true}}
			if r.Flip {
				ms = append(ms, metric{"GuardBytesPerFrame", r.GuardBytesPerFrame, 0, false})
			}
			return key, ms
		})
	case "blk", "flush", "blkflip":
		var cur, base []diskperf.Result
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("%s Q=%d J=%d D=%d", r.Mode, r.Queues, r.Jobs, r.Depth)
			if r.Write {
				key += fmt.Sprintf(" fsync=%d", r.FsyncEvery)
			}
			if r.Flip {
				key += " flip"
				if r.GuardBytesPerIO > maxFlipGuardBytesPerIO {
					g.violate(kind, key, "guard copied %.1f B/io on the page-flip path (bound %d)",
						r.GuardBytesPerIO, maxFlipGuardBytesPerIO)
				}
			}
			b, ok := findBlk(base, r)
			if !ok {
				return key, nil
			}
			ms := []metric{{"KIOPS", r.ReadKIOPS, b.ReadKIOPS, true}}
			if r.Flip {
				// The staged-doorbell rate is banded like a throughput
				// metric: a doubling means the submit-side coalescing
				// quietly stopped amortising.
				ms = append(ms, metric{"SQDoorbellsPerIO", r.SQDoorbellsPerIO, b.SQDoorbellsPerIO, true})
			}
			return key, ms
		})
	case "recovery", "failover":
		var cur, base []diskperf.RecoveryResult
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		slo := g.sloUS
		if kind == "failover" {
			slo = g.failSloUS
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("Q=%d J=%d D=%d", r.Queues, r.Jobs, r.Depth)
			if r.Errors != 0 {
				g.violate(kind, key, "recovery surfaced %d application-visible errors", r.Errors)
			}
			if r.Replayed == 0 {
				g.violate(kind, key, "recovery replayed nothing — the kill did not exercise the shadow path")
			}
			if kind == "failover" && r.Failovers == 0 {
				g.violate(kind, key, "kill was recovered by cold respawn, not standby promotion")
			}
			// The SLO: kill-to-drained p99 under the budget. The budget is
			// absolute (an application-visible stall), not baseline-relative.
			if r.DrainP99US > slo {
				g.violate(kind, key, "drain p99 %.1fµs exceeds the %.0fµs SLO", r.DrainP99US, slo)
			}
			b, ok := findRecovery(base, r)
			if !ok {
				// Same rule as rx/blk: a row with no baseline counterpart
				// is a violation, not a silent skip.
				return key, nil
			}
			return key, []metric{
				{"DrainP99US", r.DrainP99US, 0, false},
				{"RecoveryLatencyUS", r.RecoveryLatencyUS, b.RecoveryLatencyUS, true},
				{"Replayed", float64(r.Replayed), float64(b.Replayed), true},
			}
		})
	case "qrecovery":
		var cur, base []diskperf.QueueRecoveryResult
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("Q=%d J=%d D=%d", r.Queues, r.Jobs, r.Depth)
			if r.Errors != 0 {
				g.violate(kind, key, "surgical recovery surfaced %d application-visible errors", r.Errors)
			}
			if r.QueueRecoveries == 0 {
				g.violate(kind, key, "breach was never answered by a surgical recovery")
			}
			if r.Restarts != 0 {
				g.violate(kind, key, "surgical recovery escalated to %d process restarts", r.Restarts)
			}
			if r.Replayed == 0 {
				g.violate(kind, key, "surgical recovery replayed nothing — the breach did not exercise the per-queue shadow path")
			}
			// The point of queue granularity: siblings must stay in band
			// through the episode, judged against the same run's pre-breach
			// rate as well as the checked-in baseline.
			if r.PreSiblingKIOPS > 0 {
				if dev := (r.SiblingKIOPS - r.PreSiblingKIOPS) / r.PreSiblingKIOPS; dev < -g.tolerance || dev > g.tolerance {
					g.violate(kind, key, "sibling throughput %.1f KIOPS left the ±%.0f%% band around the pre-breach %.1f KIOPS",
						r.SiblingKIOPS, g.tolerance*100, r.PreSiblingKIOPS)
				}
			}
			b, ok := findQRecovery(base, r)
			if !ok {
				return key, nil
			}
			return key, []metric{
				{"SiblingKIOPS", r.SiblingKIOPS, b.SiblingKIOPS, true},
				{"BreachedKIOPS", r.BreachedKIOPS, b.BreachedKIOPS, true},
				{"Replayed", float64(r.Replayed), float64(b.Replayed), true},
			}
		})
	case "latency":
		var cur, base []report.LatencyRow
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("%s Q=%d", r.Kind, r.Queues)
			if r.P99US <= 0 {
				g.violate(kind, key, "row recorded no latency samples")
			}
			b, ok := findLatency(base, r)
			if !ok {
				return key, nil
			}
			ms := []metric{
				{"P50US", r.P50US, b.P50US, true},
				{"P99US", r.P99US, b.P99US, true},
			}
			// Per-queue splits are banded too: a single queue going slow
			// while the merge stays flat is exactly the regression a
			// per-queue artifact exists to catch.
			for qi, q := range r.PerQueue {
				if qi >= len(b.PerQueue) {
					g.violate(kind, key, "queue %d has no baseline counterpart", q.Queue)
					continue
				}
				bq := b.PerQueue[qi]
				ms = append(ms,
					metric{fmt.Sprintf("q%d.P50US", q.Queue), q.P50US, bq.P50US, true},
					metric{fmt.Sprintf("q%d.P99US", q.Queue), q.P99US, bq.P99US, true})
			}
			return key, ms
		})
	case "tenant":
		var cur, base []tenantperf.Result
		if err := load(curPath, &cur); err != nil {
			return err
		}
		if err := load(basePath, &base); err != nil {
			return err
		}
		return g.checkRows(kind, len(cur), len(base), func(i int) (string, []metric) {
			r := cur[i]
			key := fmt.Sprintf("%s T=%d conns=%d Q=%d", r.Mode, r.Tenants, r.Conns, r.Queues)
			// The isolation claims are absolute, not baseline-relative: the
			// SUD row must have run the noisy legs, every leg must have
			// convicted its hostile queue, and the sibling tenants' p99 must
			// have stayed inside the band while it happened.
			if r.Mode == "sud" && len(r.Noisy) == 0 {
				g.violate(kind, key, "SUD row carries no NoisyNeighbor legs — isolation was not exercised")
			}
			for _, n := range r.Noisy {
				if !n.Convicted {
					g.violate(kind, key, "noisy leg %s unconvicted: %s", n.Leg, n.Detail)
				}
				if n.MaxDriftFrac > g.tolerance {
					g.violate(kind, key, "noisy leg %s: victim p99 drifted %.1f%% (band ±%.0f%%)",
						n.Leg, n.MaxDriftFrac*100, g.tolerance*100)
				}
			}
			b, ok := findTenant(base, r)
			if !ok {
				return key, nil
			}
			ms := []metric{{"TotalRPS", r.TotalRPS, b.TotalRPS, true}}
			// Per-tenant splits are banded too: one tenant's queue going
			// slow while the aggregate stays flat is exactly the regression
			// a per-tenant artifact exists to catch.
			for ti, tr := range r.PerTenant {
				if ti >= len(b.PerTenant) {
					g.violate(kind, key, "tenant %d has no baseline counterpart", tr.Tenant)
					continue
				}
				bt := b.PerTenant[ti]
				ms = append(ms,
					metric{fmt.Sprintf("t%d.GoodputRPS", tr.Tenant), tr.GoodputRPS, bt.GoodputRPS, true},
					metric{fmt.Sprintf("t%d.P50US", tr.Tenant), tr.P50US, bt.P50US, true},
					metric{fmt.Sprintf("t%d.P99US", tr.Tenant), tr.P99US, bt.P99US, true})
			}
			return key, ms
		})
	default:
		return fmt.Errorf("unknown bench kind %q", kind)
	}
}

// metric is one gated value: current, baseline, and whether the tolerance
// band applies (SLO-only metrics are recorded but banded elsewhere).
type metric struct {
	name   string
	cur    float64
	base   float64
	banded bool
}

// checkRows walks the current rows, resolves each to (key, metrics), and
// applies the band. A row present in only one of the files is itself a
// violation — silently dropping a benchmark row must not pass the gate.
func (g *gate) checkRows(kind string, nCur, nBase int, rowFn func(int) (string, []metric)) error {
	if nCur == 0 {
		return fmt.Errorf("no result rows")
	}
	if nCur != nBase {
		g.violate(kind, "*", "row count %d differs from baseline %d", nCur, nBase)
	}
	for i := 0; i < nCur; i++ {
		key, ms := rowFn(i)
		if ms == nil {
			g.violate(kind, key, "row has no baseline counterpart")
			continue
		}
		for _, m := range ms {
			g.trajectory = append(g.trajectory, trajLine{
				SHA: g.sha, Kind: kind, Key: key, Metric: m.name, Value: m.cur, Baseline: m.base,
			})
			if !m.banded {
				continue
			}
			if m.base == 0 {
				if m.cur != 0 {
					g.violate(kind, key, "%s: baseline 0, current %.2f", m.name, m.cur)
				}
				continue
			}
			if dev := (m.cur - m.base) / m.base; dev < -g.tolerance || dev > g.tolerance {
				g.violate(kind, key, "%s: %.2f vs baseline %.2f (%+.1f%%, band ±%.0f%%)",
					m.name, m.cur, m.base, dev*100, g.tolerance*100)
			}
		}
	}
	return nil
}

func (g *gate) violate(kind, key, format string, args ...any) {
	g.violations++
	fmt.Printf("FAIL [%s] %s: %s\n", kind, key, fmt.Sprintf(format, args...))
}

func load(path string, out any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, out)
}

func findRx(base []netperf.MultiFlowResult, r netperf.MultiFlowResult) (netperf.MultiFlowResult, bool) {
	for _, b := range base {
		if b.Queues == r.Queues && b.Direction == r.Direction && b.Flows == r.Flows &&
			b.Flip == r.Flip {
			return b, true
		}
	}
	return netperf.MultiFlowResult{}, false
}

func findBlk(base []diskperf.Result, r diskperf.Result) (diskperf.Result, bool) {
	for _, b := range base {
		if b.Mode == r.Mode && b.Queues == r.Queues && b.Jobs == r.Jobs &&
			b.Depth == r.Depth && b.Write == r.Write && b.FsyncEvery == r.FsyncEvery &&
			b.Flip == r.Flip {
			return b, true
		}
	}
	return diskperf.Result{}, false
}

func findLatency(base []report.LatencyRow, r report.LatencyRow) (report.LatencyRow, bool) {
	for _, b := range base {
		if b.Kind == r.Kind && b.Queues == r.Queues {
			return b, true
		}
	}
	return report.LatencyRow{}, false
}

func findQRecovery(base []diskperf.QueueRecoveryResult, r diskperf.QueueRecoveryResult) (diskperf.QueueRecoveryResult, bool) {
	for _, b := range base {
		if b.Queues == r.Queues && b.Jobs == r.Jobs && b.Depth == r.Depth {
			return b, true
		}
	}
	return diskperf.QueueRecoveryResult{}, false
}

func findTenant(base []tenantperf.Result, r tenantperf.Result) (tenantperf.Result, bool) {
	for _, b := range base {
		if b.Mode == r.Mode && b.Tenants == r.Tenants && b.Conns == r.Conns &&
			b.Queues == r.Queues {
			return b, true
		}
	}
	return tenantperf.Result{}, false
}

func findRecovery(base []diskperf.RecoveryResult, r diskperf.RecoveryResult) (diskperf.RecoveryResult, bool) {
	for _, b := range base {
		if b.Queues == r.Queues && b.Jobs == r.Jobs && b.Depth == r.Depth {
			return b, true
		}
	}
	return diskperf.RecoveryResult{}, false
}
