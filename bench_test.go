// Package sud_test holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (run `go test -bench=. -benchmem`):
//
//	BenchmarkTCPStream*    — Figure 8 row 1 (TCP receive throughput)
//	BenchmarkUDPStreamTX*  — Figure 8 row 2 (64-byte transmit rate)
//	BenchmarkUDPStreamRX*  — Figure 8 row 3 (64-byte receive rate)
//	BenchmarkUDPRR*        — Figure 8 row 4 (request/response rate)
//	BenchmarkFig5LoC       — Figure 5 (component line counts)
//	BenchmarkFig9Mappings  — Figure 9 (IO page directory walk)
//	BenchmarkAttack*       — §5.2 security matrix rows
//	BenchmarkAblation*     — §3.1.2/§4.2 design-choice ablations
//
// Throughput and CPU are virtual-time measurements reported as custom
// metrics (Mbit/s, Kpkt/s, tx/s, cpu%); ns/op reflects host simulation
// speed, not the modelled system.
package sud_test

import (
	"testing"

	"sud/internal/attack"
	"sud/internal/diskperf"
	"sud/internal/hw"
	"sud/internal/netperf"
	"sud/internal/proxy/ethproxy"
	"sud/internal/report"
	"sud/internal/sim"
)

// benchOpt keeps virtual windows small enough for b.N iterations.
func benchOpt() netperf.Options {
	return netperf.Options{
		Warmup:        10 * sim.Millisecond,
		Window:        50 * sim.Millisecond,
		MinWindows:    3,
		MaxWindows:    4,
		HalfWidthFrac: 0.05,
	}
}

// runNet executes one Figure 8 cell per benchmark iteration and reports the
// modelled throughput and CPU as metrics.
func runNet(b *testing.B, mode netperf.Mode,
	bench func(*netperf.Testbed, netperf.Options) (netperf.Result, error),
	tweak func(*netperf.Testbed)) {
	b.Helper()
	var last netperf.Result
	for i := 0; i < b.N; i++ {
		tb, err := netperf.NewTestbed(mode, hw.DefaultPlatform())
		if err != nil {
			b.Fatal(err)
		}
		if tweak != nil {
			tweak(tb)
		}
		res, err := bench(tb, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Value, last.Unit)
	b.ReportMetric(last.CPU*100, "cpu%")
}

func BenchmarkTCPStreamKernel(b *testing.B) { runNet(b, netperf.ModeKernel, netperf.TCPStream, nil) }
func BenchmarkTCPStreamSUD(b *testing.B)    { runNet(b, netperf.ModeSUD, netperf.TCPStream, nil) }

func BenchmarkUDPStreamTXKernel(b *testing.B) {
	runNet(b, netperf.ModeKernel, netperf.UDPStreamTX, nil)
}
func BenchmarkUDPStreamTXSUD(b *testing.B) { runNet(b, netperf.ModeSUD, netperf.UDPStreamTX, nil) }

func BenchmarkUDPStreamRXKernel(b *testing.B) {
	runNet(b, netperf.ModeKernel, netperf.UDPStreamRX, nil)
}
func BenchmarkUDPStreamRXSUD(b *testing.B) { runNet(b, netperf.ModeSUD, netperf.UDPStreamRX, nil) }

func BenchmarkUDPRRKernel(b *testing.B) { runNet(b, netperf.ModeKernel, netperf.UDPRR, nil) }
func BenchmarkUDPRRSUD(b *testing.B)    { runNet(b, netperf.ModeSUD, netperf.UDPRR, nil) }

// --- Multi-flow scale rows ------------------------------------------------------
//
// BenchmarkMultiFlow* run the scale scenario: K concurrent UDP flows across
// Q uchan ring pairs and two untrusted driver processes (multi-queue e1000e
// + legacy ne2k-pci), in three directions — TX (DUT sends), RX (the remote
// floods K RSS-steered flows at the DUT's RX rings, delivered in batched
// downcalls) and bidi. Reported metrics: aggregate delivered rate, per-queue
// doorbell rate, RX frames per doorbell, and driver wake count. Q=1
// degenerates to the Figure 8 transport; the Q=4 rows are the multi-queue
// payoff in each direction.

func runMultiFlow(b *testing.B, queues, flows int, dir netperf.Direction) {
	b.Helper()
	var last netperf.MultiFlowResult
	for i := 0; i < b.N; i++ {
		tb, err := netperf.NewMultiFlowTestbed(queues, hw.DefaultPlatform())
		if err != nil {
			b.Fatal(err)
		}
		res, err := netperf.MultiFlowDir(tb, flows, dir, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AggregateKpps, "Kpkt/s")
	b.ReportMetric(last.CPU*100, "cpu%")
	b.ReportMetric(float64(last.Wakeups), "wakes")
	var doorbells float64
	for _, q := range last.PerQueue {
		doorbells += q.DoorbellsPerSec
	}
	b.ReportMetric(doorbells, "doorbells/s")
	if dir != netperf.DirTX {
		b.ReportMetric(last.RxFramesPerDoorbell, "rxframes/doorbell")
	}
}

func BenchmarkMultiFlowUDPStreamTXQ1(b *testing.B) { runMultiFlow(b, 1, 6, netperf.DirTX) }
func BenchmarkMultiFlowUDPStreamTXQ2(b *testing.B) { runMultiFlow(b, 2, 6, netperf.DirTX) }
func BenchmarkMultiFlowUDPStreamTXQ4(b *testing.B) { runMultiFlow(b, 4, 6, netperf.DirTX) }

func BenchmarkMultiFlowUDPStreamRXQ1(b *testing.B) { runMultiFlow(b, 1, 6, netperf.DirRX) }
func BenchmarkMultiFlowUDPStreamRXQ2(b *testing.B) { runMultiFlow(b, 2, 6, netperf.DirRX) }
func BenchmarkMultiFlowUDPStreamRXQ4(b *testing.B) { runMultiFlow(b, 4, 6, netperf.DirRX) }

func BenchmarkMultiFlowUDPStreamBidiQ4(b *testing.B) { runMultiFlow(b, 4, 6, netperf.DirBidi) }

// --- Block IOPS rows ------------------------------------------------------------
//
// BenchmarkBlockIOPS* run the storage scale scenario: 16 jobs × depth 6
// of 4 KiB random reads against the NVMe-lite controller driven by the
// untrusted nvmed process, with Q I/O queue pairs end to end (device
// engines, driver queue pairs, uchan ring pairs, block-core queue
// contexts). Q=1 is device-bound at the same rate as the trusted kernel
// baseline; the Q=4 row is the multi-queue payoff for storage.

func runBlockIOPS(b *testing.B, mode diskperf.Mode, queues int) {
	b.Helper()
	var last diskperf.Result
	for i := 0; i < b.N; i++ {
		tb, err := diskperf.NewTestbed(mode, queues, hw.DefaultPlatform())
		if err != nil {
			b.Fatal(err)
		}
		res, err := diskperf.BlockIOPS(tb, 16, 6, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ReadKIOPS, "Kiops")
	b.ReportMetric(last.MBps, "MB/s")
	b.ReportMetric(last.CPU*100, "cpu%")
	if mode == diskperf.ModeSUD {
		b.ReportMetric(float64(last.Wakeups), "wakes")
		b.ReportMetric(last.CompsPerDoorbell, "comps/doorbell")
	}
}

func BenchmarkBlockIOPSKernel(b *testing.B) { runBlockIOPS(b, diskperf.ModeKernel, 1) }
func BenchmarkBlockIOPSQ1(b *testing.B)     { runBlockIOPS(b, diskperf.ModeSUD, 1) }
func BenchmarkBlockIOPSQ2(b *testing.B)     { runBlockIOPS(b, diskperf.ModeSUD, 2) }
func BenchmarkBlockIOPSQ4(b *testing.B)     { runBlockIOPS(b, diskperf.ModeSUD, 4) }

// BenchmarkBlockWriteIOPS* run the durability-bounded write workload
// against a controller with a 64-block volatile write cache: Fsync0 never
// flushes (cache-speed writes), FsyncN issues a Flush barrier every N
// acked writes per job — fio's fsync=N — so the flush drain time and the
// barrier's submission parking bound the achievable rate.
func runBlockWriteIOPS(b *testing.B, queues, fsyncEvery int) {
	b.Helper()
	var last diskperf.Result
	for i := 0; i < b.N; i++ {
		tb, err := diskperf.NewTestbedWC(diskperf.ModeSUD, queues, 64, hw.DefaultPlatform())
		if err != nil {
			b.Fatal(err)
		}
		res, err := diskperf.BlockIOPSWrite(tb, 8, 4, fsyncEvery, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ReadKIOPS, "Kiops")
	b.ReportMetric(last.CPU*100, "cpu%")
	b.ReportMetric(float64(last.Flushes), "flushes")
}

func BenchmarkBlockWriteIOPSQ4Fsync0(b *testing.B)  { runBlockWriteIOPS(b, 4, 0) }
func BenchmarkBlockWriteIOPSQ4Fsync32(b *testing.B) { runBlockWriteIOPS(b, 4, 32) }

// --- Figure 5 / Figure 9 -------------------------------------------------------

func BenchmarkFig5LoC(b *testing.B) {
	root, err := report.ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	var total int
	for i := 0; i < b.N; i++ {
		comps, err := report.RunFig5(root)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, c := range comps {
			total += c.LoC
		}
	}
	b.ReportMetric(float64(total), "sud-loc")
}

func BenchmarkFig9Mappings(b *testing.B) {
	var entries int
	for i := 0; i < b.N; i++ {
		es, err := report.RunFig9(hw.DefaultPlatform())
		if err != nil {
			b.Fatal(err)
		}
		entries = len(es)
	}
	b.ReportMetric(float64(entries), "mappings")
}

// --- §5.2 security matrix -------------------------------------------------------

func runAttack(b *testing.B, f func(attack.Config) (attack.Outcome, error), cfg attack.Config, wantCompromised bool) {
	b.Helper()
	var compromised int
	for i := 0; i < b.N; i++ {
		o, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if o.Compromised != wantCompromised {
			b.Fatalf("unexpected outcome: %s", o)
		}
		if o.Compromised {
			compromised++
		}
	}
	b.ReportMetric(float64(compromised)/float64(b.N), "compromised")
}

func sudCfg() attack.Config {
	return attack.Config{Name: "SUD", Mode: attack.UnderSUD, Platform: hw.DefaultPlatform()}
}

func kernelCfg() attack.Config {
	return attack.Config{Name: "kernel", Mode: attack.InKernel, Platform: hw.DefaultPlatform()}
}

func BenchmarkAttackDMAWriteBaseline(b *testing.B) { runAttack(b, attack.DMAWrite, kernelCfg(), true) }
func BenchmarkAttackDMAWriteSUD(b *testing.B)      { runAttack(b, attack.DMAWrite, sudCfg(), false) }
func BenchmarkAttackDMAReadSUD(b *testing.B)       { runAttack(b, attack.DMARead, sudCfg(), false) }
func BenchmarkAttackP2PSUD(b *testing.B)           { runAttack(b, attack.P2PDMA, sudCfg(), false) }
func BenchmarkAttackIRQFloodSUD(b *testing.B)      { runAttack(b, attack.DeviceIRQFlood, sudCfg(), false) }
func BenchmarkAttackRingFloodSUD(b *testing.B)     { runAttack(b, attack.RingFlood, sudCfg(), false) }
func BenchmarkAttackRSSSteerSUD(b *testing.B)      { runAttack(b, attack.RSSSteer, sudCfg(), false) }
func BenchmarkAttackBlkRedirectSUD(b *testing.B)   { runAttack(b, attack.BlkRedirect, sudCfg(), false) }
func BenchmarkAttackFlushLieSUD(b *testing.B)      { runAttack(b, attack.FlushLie, sudCfg(), false) }
func BenchmarkAttackMSIStormPaperHW(b *testing.B)  { runAttack(b, attack.MSIForgeStorm, sudCfg(), true) }
func BenchmarkAttackMSIStormRemapHW(b *testing.B) {
	runAttack(b, attack.MSIForgeStorm,
		attack.Config{Name: "remap", Mode: attack.UnderSUD, Platform: hw.SecurePlatform()}, false)
}

// --- Ablations (§3.1.2, §4.2 design choices) --------------------------------------

// BenchmarkAblationGuardFused/Separate/ReadonlyIOTLB compare the TOCTOU
// guard strategies on the SUD receive path. The paper chose the fused
// checksum+copy; the read-only-page-table alternative pays an IOTLB
// invalidation per buffer, which it found prohibitively expensive.
func ablationGuard(b *testing.B, mode int) {
	runNet(b, netperf.ModeSUD, netperf.UDPStreamRX, func(tb *netperf.Testbed) {
		tb.Proc.Eth.GuardMode = mode
	})
}

func BenchmarkAblationGuardFused(b *testing.B)    { ablationGuard(b, ethproxy.GuardFused) }
func BenchmarkAblationGuardSeparate(b *testing.B) { ablationGuard(b, ethproxy.GuardSeparate) }
func BenchmarkAblationGuardReadonlyIOTLB(b *testing.B) {
	ablationGuard(b, ethproxy.GuardReadonlyIOTLB)
}

// BenchmarkAblationNoBatching disables downcall batching: every netif_rx
// pays a doorbell (§3.1.2 batching optimisation reversed).
func BenchmarkAblationNoBatching(b *testing.B) {
	runNet(b, netperf.ModeSUD, netperf.UDPStreamRX, func(tb *netperf.Testbed) {
		tb.Proc.Chan.SetNoBatch(true)
	})
}

// BenchmarkAblationNoPolling disables the UML idle thread's polling window:
// every follow-up upcall pays a full sleep/wake cycle (§4.2 optimisation
// reversed); UDP_RR suffers most.
func BenchmarkAblationNoPolling(b *testing.B) {
	runNet(b, netperf.ModeSUD, netperf.UDPRR, func(tb *netperf.Testbed) {
		tb.Proc.Chan.SetNoPoll(true)
	})
}
